//! Stage-graph telemetry: always-on lock-free counters, a pluggable
//! event [`Recorder`], and a bounded drop-oldest [`Tracer`] with a
//! Perfetto-compatible Chrome-JSON exporter.
//!
//! The streaming engine is a dataflow graph — shard workers generate
//! health-gated chunks, a merger round-robins them into the caller's
//! buffer, sessions draw conditioned bytes and harvest reseeds — and
//! every stage boundary in that graph reports here. Two layers, by
//! cost:
//!
//! * **Counters** ([`Telemetry`], read through [`MetricsHandle`] /
//!   [`Snapshot`]) are always on. Each shard owns a cache-line-aligned
//!   block of relaxed atomics ([`ShardCounters`]); stream-wide tallies
//!   (merged chunks, delivered bytes, ring park/wake counts, rollbacks,
//!   reseed grants/stalls, session bytes) live beside them. A counter
//!   bump is one relaxed `fetch_add` — no locks, no allocation, no
//!   false sharing between shards.
//! * **Events** ([`StageEvent`] through the [`Recorder`] trait) are
//!   pay-for-what-you-plug. The default recorder is [`NoopRecorder`]
//!   (the call inlines to nothing); plugging a [`Tracer`] captures a
//!   bounded, drop-oldest ring of timestamped events that exports as
//!   Chrome trace JSON — loadable in Perfetto / `chrome://tracing`,
//!   one track per shard plus a merge/session track, instant events
//!   for health verdicts and retirements.
//!
//! Timestamps are injectable: [`Tracer::deterministic`] replaces the
//! wall clock with an atomic sequence counter so tests can assert exact
//! event orders and monotonic exports with no real-time dependence.
//!
//! See `DESIGN.md` §11 for the event taxonomy and the overhead
//! argument.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One stage-boundary event in the dataflow graph.
///
/// Events are `Copy` and carry only scalars, so recording one never
/// allocates. The producer-side events (`ChunkProduced`,
/// `HealthVerdict`, `Restart`, `Retired`) are emitted by the shard
/// workers — scalar threads and the sliced bank emit the **same
/// per-shard sequence** for the same seeds, so a trace is
/// kernel-agnostic once filtered by shard. The merge/session events
/// (`ChunkMerged`, `Rollback`, `ReseedGranted`, `ReseedStalled`) are
/// emitted by the consumer side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StageEvent {
    /// A shard worker pushed a health-passed chunk into its data ring.
    ChunkProduced {
        /// Index of the producing shard.
        shard: usize,
        /// Chunk payload size in bytes.
        bytes: usize,
    },
    /// The SP 800-90B continuous tests judged a candidate chunk.
    HealthVerdict {
        /// Index of the shard whose chunk was judged.
        shard: usize,
        /// `true` iff the chunk passed both RCT and APT.
        passed: bool,
    },
    /// A health failure restarted the shard's generator.
    Restart {
        /// Index of the restarted shard.
        shard: usize,
        /// Consecutive restarts so far for the current chunk (1-based).
        consecutive: u64,
    },
    /// The shard retired — its obituary is in flight to the merger.
    Retired {
        /// Index of the retired shard.
        shard: usize,
        /// Consecutive restarts charged at retirement (0 for an
        /// injected retirement, `max_consecutive_restarts` for a
        /// health-exhaustion one).
        consecutive_restarts: u64,
    },
    /// The merger popped a chunk from a shard's data ring.
    ChunkMerged {
        /// Index of the shard the chunk came from.
        shard: usize,
        /// Chunk payload size in bytes.
        bytes: usize,
    },
    /// A failed conditioned read pushed already-copied bytes back onto
    /// the carry front (the all-or-nothing rollback contract).
    Rollback {
        /// Number of bytes rolled back.
        bytes: usize,
    },
    /// The reseed arbiter granted a session's harvest.
    ReseedGranted {
        /// Id of the session that harvested.
        session: u64,
    },
    /// A session's reseed stalled (degraded mode: re-key from last
    /// material instead of fresh entropy).
    ReseedStalled {
        /// Id of the stalled session.
        session: u64,
    },
}

/// A sink for [`StageEvent`]s, called from the engine's hot paths.
///
/// Implementations must be cheap and must not allocate per event if
/// they are to preserve the engine's zero-allocs-per-read invariant
/// (the bundled [`Tracer`] records into a pre-allocated ring). The
/// default method body drops the event, so `impl Recorder for MySink
/// {}` is a valid no-op sink.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Record one stage event. Default: drop it.
    fn record(&self, event: StageEvent) {
        let _ = event;
    }
}

/// The default recorder: every event inlines to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Per-shard counter block, aligned to its own cache line so two
/// shards bumping counters never contend on shared lines.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct ShardCounters {
    chunks_produced: AtomicU64,
    bits_emitted: AtomicU64,
    health_passes: AtomicU64,
    health_failures: AtomicU64,
    restarts: AtomicU64,
    retirements: AtomicU64,
}

/// The engine-wide counter block plus the plugged [`Recorder`].
///
/// One `Telemetry` is created per stream at build time and shared
/// (`Arc`) by every worker, the merger, and the session layer. All
/// counters are relaxed atomics: they are statistics, not
/// synchronization, and the reader reconciles them against ground
/// truth (delivered bytes) rather than against each other.
#[derive(Debug)]
pub struct Telemetry {
    shards: Box<[ShardCounters]>,
    chunks_merged: AtomicU64,
    bytes_delivered: AtomicU64,
    queue_high_water: AtomicU64,
    rollbacks: AtomicU64,
    rollback_bytes: AtomicU64,
    reseeds_granted: AtomicU64,
    reseeds_stalled: AtomicU64,
    session_bytes: AtomicU64,
    // Shared with the SPSC rings across the crate boundary: the rings
    // bump these directly at their park/notify sites.
    ring_parks: Arc<AtomicU64>,
    ring_wakes: Arc<AtomicU64>,
    recorder: Arc<dyn Recorder>,
}

impl Telemetry {
    /// Create a counter block for `shards` shards feeding `recorder`.
    pub fn new(shards: usize, recorder: Arc<dyn Recorder>) -> Self {
        Self {
            shards: (0..shards).map(|_| ShardCounters::default()).collect(),
            chunks_merged: AtomicU64::new(0),
            bytes_delivered: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            rollback_bytes: AtomicU64::new(0),
            reseeds_granted: AtomicU64::new(0),
            reseeds_stalled: AtomicU64::new(0),
            session_bytes: AtomicU64::new(0),
            ring_parks: Arc::new(AtomicU64::new(0)),
            ring_wakes: Arc::new(AtomicU64::new(0)),
            recorder,
        }
    }

    /// Number of shard counter blocks.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The park/wake tallies the stream's SPSC rings share, in
    /// `(parks, wakes)` order. The engine clones these into every ring
    /// it builds so blocked-thread accounting lands here.
    pub fn ring_wait_counters(&self) -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (Arc::clone(&self.ring_parks), Arc::clone(&self.ring_wakes))
    }

    /// A shard pushed a health-passed chunk of `bytes` bytes.
    pub fn chunk_produced(&self, shard: usize, bytes: usize) {
        let c = &self.shards[shard];
        c.chunks_produced.fetch_add(1, Relaxed);
        c.bits_emitted.fetch_add(bytes as u64 * 8, Relaxed);
        self.recorder
            .record(StageEvent::ChunkProduced { shard, bytes });
    }

    /// The health tests judged a candidate chunk from `shard`.
    pub fn health_verdict(&self, shard: usize, passed: bool) {
        let c = &self.shards[shard];
        if passed {
            c.health_passes.fetch_add(1, Relaxed);
        } else {
            c.health_failures.fetch_add(1, Relaxed);
        }
        self.recorder
            .record(StageEvent::HealthVerdict { shard, passed });
    }

    /// A health failure restarted `shard`'s generator (`consecutive`
    /// is 1-based within the current chunk attempt).
    pub fn restart(&self, shard: usize, consecutive: u64) {
        self.shards[shard].restarts.fetch_add(1, Relaxed);
        self.recorder
            .record(StageEvent::Restart { shard, consecutive });
    }

    /// `shard` retired with `consecutive_restarts` charged.
    pub fn retired(&self, shard: usize, consecutive_restarts: u64) {
        self.shards[shard].retirements.fetch_add(1, Relaxed);
        self.recorder.record(StageEvent::Retired {
            shard,
            consecutive_restarts,
        });
    }

    /// The merger popped a chunk from `shard`'s data ring whose depth
    /// (including the popped chunk) was `queue_depth`.
    pub fn chunk_merged(&self, shard: usize, bytes: usize, queue_depth: usize) {
        self.chunks_merged.fetch_add(1, Relaxed);
        self.queue_high_water.fetch_max(queue_depth as u64, Relaxed);
        self.recorder
            .record(StageEvent::ChunkMerged { shard, bytes });
    }

    /// `n` raw bytes were copied out to the caller.
    pub fn bytes_delivered(&self, n: usize) {
        self.bytes_delivered.fetch_add(n as u64, Relaxed);
    }

    /// A failed conditioned read rolled `bytes` bytes back onto the
    /// carry front.
    pub fn rollback(&self, bytes: usize) {
        self.rollbacks.fetch_add(1, Relaxed);
        self.rollback_bytes.fetch_add(bytes as u64, Relaxed);
        self.recorder.record(StageEvent::Rollback { bytes });
    }

    /// The arbiter granted `session`'s reseed harvest.
    pub fn reseed_granted(&self, session: u64) {
        self.reseeds_granted.fetch_add(1, Relaxed);
        self.recorder.record(StageEvent::ReseedGranted { session });
    }

    /// `session`'s reseed stalled into degraded mode.
    pub fn reseed_stalled(&self, session: u64) {
        self.reseeds_stalled.fetch_add(1, Relaxed);
        self.recorder.record(StageEvent::ReseedStalled { session });
    }

    /// `n` bytes were delivered to a session consumer.
    pub fn session_bytes(&self, n: usize) {
        self.session_bytes.fetch_add(n as u64, Relaxed);
    }

    /// Aggregate counter snapshot (shard blocks summed).
    pub fn snapshot(&self) -> Snapshot {
        let mut agg = Snapshot {
            shards: self.shards.len() as u64,
            ..Snapshot::default()
        };
        for c in self.shards.iter() {
            agg.chunks_produced += c.chunks_produced.load(Relaxed);
            agg.bits_emitted += c.bits_emitted.load(Relaxed);
            agg.health_passes += c.health_passes.load(Relaxed);
            agg.health_failures += c.health_failures.load(Relaxed);
            agg.restarts += c.restarts.load(Relaxed);
            agg.retirements += c.retirements.load(Relaxed);
        }
        agg.chunks_merged = self.chunks_merged.load(Relaxed);
        agg.bytes_delivered = self.bytes_delivered.load(Relaxed);
        agg.queue_high_water = self.queue_high_water.load(Relaxed);
        agg.ring_parks = self.ring_parks.load(Relaxed);
        agg.ring_wakes = self.ring_wakes.load(Relaxed);
        agg.rollbacks = self.rollbacks.load(Relaxed);
        agg.rollback_bytes = self.rollback_bytes.load(Relaxed);
        agg.reseeds_granted = self.reseeds_granted.load(Relaxed);
        agg.reseeds_stalled = self.reseeds_stalled.load(Relaxed);
        agg.session_bytes = self.session_bytes.load(Relaxed);
        agg
    }

    /// Per-shard counter snapshot.
    ///
    /// # Panics
    /// If `shard >= shard_count()`.
    pub fn shard_snapshot(&self, shard: usize) -> ShardSnapshot {
        let c = &self.shards[shard];
        ShardSnapshot {
            shard: shard as u64,
            chunks_produced: c.chunks_produced.load(Relaxed),
            bits_emitted: c.bits_emitted.load(Relaxed),
            health_passes: c.health_passes.load(Relaxed),
            health_failures: c.health_failures.load(Relaxed),
            restarts: c.restarts.load(Relaxed),
            retirements: c.retirements.load(Relaxed),
        }
    }
}

/// Point-in-time aggregate of every engine counter.
///
/// Relaxed loads: fields taken while workers run may be mutually
/// skewed by in-flight chunks, but each field is individually exact
/// once the stream quiesces (and `bytes_delivered` is always exact —
/// it is bumped by the reading thread itself).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Snapshot {
    /// Number of shards the stream was built with.
    pub shards: u64,
    /// Health-passed chunks pushed by all shard workers.
    pub chunks_produced: u64,
    /// Bits in those chunks (`chunks_produced * chunk_bytes * 8`).
    pub bits_emitted: u64,
    /// Chunks that passed the SP 800-90B continuous tests.
    pub health_passes: u64,
    /// Chunks the continuous tests rejected.
    pub health_failures: u64,
    /// Generator restarts triggered by health failures.
    pub restarts: u64,
    /// Shards that retired (injected or health-exhaustion).
    pub retirements: u64,
    /// Chunks the merger popped from shard data rings.
    pub chunks_merged: u64,
    /// Raw bytes copied out to callers of the stream.
    pub bytes_delivered: u64,
    /// High-water mark of any shard data ring's occupancy at merge
    /// time — the buffer-pool pressure gauge.
    pub queue_high_water: u64,
    /// Times a ring producer/consumer parked its thread.
    pub ring_parks: u64,
    /// Times a ring notify actually woke a parked peer.
    pub ring_wakes: u64,
    /// Conditioned-read rollbacks (all-or-nothing contract).
    pub rollbacks: u64,
    /// Bytes pushed back onto the carry by those rollbacks.
    pub rollback_bytes: u64,
    /// Reseed harvests the arbiter granted.
    pub reseeds_granted: u64,
    /// Reseeds that stalled into degraded re-keying.
    pub reseeds_stalled: u64,
    /// Bytes delivered to session consumers (any tier).
    pub session_bytes: u64,
}

/// Point-in-time snapshot of one shard's counter block.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardSnapshot {
    /// Index of the shard this block belongs to.
    pub shard: u64,
    /// Health-passed chunks this shard pushed.
    pub chunks_produced: u64,
    /// Bits in those chunks.
    pub bits_emitted: u64,
    /// Chunks that passed the continuous tests.
    pub health_passes: u64,
    /// Chunks the continuous tests rejected.
    pub health_failures: u64,
    /// Generator restarts on this shard.
    pub restarts: u64,
    /// 1 once this shard has retired.
    pub retirements: u64,
}

/// Cloneable read handle over a stream's [`Telemetry`].
///
/// Handed out by `EntropyStream::metrics()` / `EntropySource::
/// metrics()` (and the tier shims above them); stays valid after the
/// stream fails or is dropped — counters freeze at their final values.
#[derive(Debug, Clone)]
pub struct MetricsHandle {
    telemetry: Arc<Telemetry>,
}

impl MetricsHandle {
    /// Wrap a shared telemetry block.
    pub fn new(telemetry: Arc<Telemetry>) -> Self {
        Self { telemetry }
    }

    /// Number of shards the underlying stream was built with.
    pub fn shards(&self) -> usize {
        self.telemetry.shard_count()
    }

    /// Aggregate counter snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Per-shard counter snapshot.
    ///
    /// # Panics
    /// If `shard >= self.shards()`.
    pub fn shard_snapshot(&self, shard: usize) -> ShardSnapshot {
        self.telemetry.shard_snapshot(shard)
    }

    /// Derived per-shard throughput in Mbps: the growth of one shard's
    /// `bits_emitted` from `baseline` to now, over a caller-supplied
    /// observation window.
    ///
    /// The caller owns the clock: take a
    /// [`shard_snapshot`](Self::shard_snapshot), wait (or work) for
    /// `window`, then call this with both. Counters only grow, so the rate is never
    /// negative; a zero-length window returns infinity on any growth
    /// and 0.0 otherwise.
    ///
    /// # Panics
    /// If `baseline.shard >= self.shards()`.
    pub fn shard_mbps(&self, baseline: &ShardSnapshot, window: std::time::Duration) -> f64 {
        let now = self.telemetry.shard_snapshot(baseline.shard as usize);
        let grown = now.bits_emitted.saturating_sub(baseline.bits_emitted);
        let secs = window.as_secs_f64();
        if secs == 0.0 {
            if grown == 0 {
                return 0.0;
            }
            return f64::INFINITY;
        }
        grown as f64 / secs / 1e6
    }

    /// Derived throughput for every shard at once: element `i` is the
    /// Mbps shard `i` sustained between `baseline` and now, over the
    /// caller-supplied window. Baselines taken with
    /// [`per_shard_baseline`](Self::per_shard_baseline).
    pub fn per_shard_mbps(
        &self,
        baseline: &[ShardSnapshot],
        window: std::time::Duration,
    ) -> Vec<f64> {
        baseline
            .iter()
            .map(|b| self.shard_mbps(b, window))
            .collect()
    }

    /// Snapshot of every shard's counters, as a baseline for
    /// [`per_shard_mbps`](Self::per_shard_mbps).
    pub fn per_shard_baseline(&self) -> Vec<ShardSnapshot> {
        (0..self.shards()).map(|s| self.shard_snapshot(s)).collect()
    }
}

/// One timestamped event captured by a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in microseconds (wall clock) or sequence number
    /// (injected deterministic clock). Monotonically non-decreasing in
    /// capture order.
    pub ts: u64,
    /// The recorded stage event.
    pub event: StageEvent,
}

#[derive(Debug)]
enum TraceClock {
    /// Microseconds since tracer construction.
    Wall(Instant),
    /// Deterministic: each stamp is the next integer in sequence.
    Injected(AtomicU64),
}

impl TraceClock {
    fn now(&self) -> u64 {
        match self {
            TraceClock::Wall(epoch) => epoch.elapsed().as_micros() as u64,
            TraceClock::Injected(seq) => seq.fetch_add(1, Relaxed),
        }
    }
}

/// A bounded, drop-oldest ring of [`TraceEvent`]s.
///
/// The buffer is allocated once at construction; recording into a full
/// tracer evicts the oldest event (counted in [`Tracer::dropped`])
/// rather than growing, so a plugged tracer preserves the engine's
/// zero-allocs-per-read invariant. Capture order is total (one mutex
/// guards the ring), so timestamps in [`Tracer::events`] and the
/// Chrome-JSON export are monotonically non-decreasing.
#[derive(Debug)]
pub struct Tracer {
    buffer: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    clock: TraceClock,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Tracer {
    /// A wall-clock tracer holding at most `capacity` events.
    ///
    /// # Panics
    /// If `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        Self::with_clock(capacity, TraceClock::Wall(Instant::now()))
    }

    /// A deterministic tracer: timestamps are an injected sequence
    /// counter (0, 1, 2, …) instead of the wall clock, so two runs of
    /// the same workload capture identical traces.
    ///
    /// # Panics
    /// If `capacity` is 0.
    pub fn deterministic(capacity: usize) -> Self {
        Self::with_clock(capacity, TraceClock::Injected(AtomicU64::new(0)))
    }

    fn with_clock(capacity: usize, clock: TraceClock) -> Self {
        assert!(capacity > 0, "tracer capacity must be non-zero");
        Self {
            buffer: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            clock,
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Relaxed)
    }

    /// Events evicted by the drop-oldest policy.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buffer
            .lock()
            .expect("tracer mutex poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Export the retained events as Chrome trace JSON
    /// (`{"traceEvents": [...]}`), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Track layout: `pid` 1 throughout; `tid` 0 is the merge/session
    /// track (`ChunkMerged`, `Rollback`, `ReseedGranted`,
    /// `ReseedStalled`), `tid` N+1 is shard N's production track.
    /// Chunk production/merge render as 1-tick complete events (`"X"`)
    /// so the tracks show activity; verdicts, restarts, retirements,
    /// rollbacks, and reseed outcomes are thread-scoped instant events
    /// (`"i"`). Thread-name metadata (`"M"`) rows come first; the data
    /// events that follow are in capture order with monotonically
    /// non-decreasing timestamps.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |out: &mut String, row: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&row);
        };
        // Name every track that appears, metadata rows first.
        let mut tids: Vec<u64> = events.iter().map(|e| chrome_tid(&e.event)).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let name = if tid == 0 {
                "merge/session".to_string()
            } else {
                format!("shard-{}", tid - 1)
            };
            emit(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
        for TraceEvent { ts, event } in events {
            let tid = chrome_tid(&event);
            let mut row = String::with_capacity(96);
            match event {
                StageEvent::ChunkProduced { shard, bytes } => write!(
                    row,
                    "{{\"name\":\"chunk_produced\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"shard\":{shard},\"bytes\":{bytes}}}}}"
                ),
                StageEvent::ChunkMerged { shard, bytes } => write!(
                    row,
                    "{{\"name\":\"chunk_merged\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"shard\":{shard},\"bytes\":{bytes}}}}}"
                ),
                StageEvent::HealthVerdict { shard, passed } => write!(
                    row,
                    "{{\"name\":\"health_{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"shard\":{shard}}}}}",
                    if passed { "pass" } else { "fail" }
                ),
                StageEvent::Restart { shard, consecutive } => write!(
                    row,
                    "{{\"name\":\"restart\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"shard\":{shard},\"consecutive\":{consecutive}}}}}"
                ),
                StageEvent::Retired {
                    shard,
                    consecutive_restarts,
                } => write!(
                    row,
                    "{{\"name\":\"retired\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"shard\":{shard},\
                     \"consecutive_restarts\":{consecutive_restarts}}}}}"
                ),
                StageEvent::Rollback { bytes } => write!(
                    row,
                    "{{\"name\":\"rollback\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"bytes\":{bytes}}}}}"
                ),
                StageEvent::ReseedGranted { session } => write!(
                    row,
                    "{{\"name\":\"reseed_granted\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"session\":{session}}}}}"
                ),
                StageEvent::ReseedStalled { session } => write!(
                    row,
                    "{{\"name\":\"reseed_stalled\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"session\":{session}}}}}"
                ),
            }
            .expect("writing to a String cannot fail");
            emit(&mut out, row);
        }
        out.push_str("]}");
        out
    }
}

impl Recorder for Tracer {
    fn record(&self, event: StageEvent) {
        let ts = self.clock.now();
        let mut buffer = self.buffer.lock().expect("tracer mutex poisoned");
        if buffer.len() == self.capacity {
            buffer.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        buffer.push_back(TraceEvent { ts, event });
        self.recorded.fetch_add(1, Relaxed);
    }
}

/// Chrome-JSON track id for an event: 0 = merge/session, N+1 = shard N.
fn chrome_tid(event: &StageEvent) -> u64 {
    match event {
        StageEvent::ChunkProduced { shard, .. }
        | StageEvent::HealthVerdict { shard, .. }
        | StageEvent::Restart { shard, .. }
        | StageEvent::Retired { shard, .. } => *shard as u64 + 1,
        StageEvent::ChunkMerged { .. }
        | StageEvent::Rollback { .. }
        | StageEvent::ReseedGranted { .. }
        | StageEvent::ReseedStalled { .. } => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_across_shards() {
        let t = Telemetry::new(2, Arc::new(NoopRecorder));
        t.chunk_produced(0, 64);
        t.chunk_produced(1, 64);
        t.health_verdict(0, true);
        t.health_verdict(1, false);
        t.restart(1, 1);
        t.retired(1, 3);
        t.chunk_merged(0, 64, 2);
        t.bytes_delivered(64);
        t.rollback(7);
        t.reseed_granted(1);
        t.reseed_stalled(2);
        t.session_bytes(32);
        let s = t.snapshot();
        assert_eq!(s.shards, 2);
        assert_eq!(s.chunks_produced, 2);
        assert_eq!(s.bits_emitted, 2 * 64 * 8);
        assert_eq!(s.health_passes, 1);
        assert_eq!(s.health_failures, 1);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.retirements, 1);
        assert_eq!(s.chunks_merged, 1);
        assert_eq!(s.bytes_delivered, 64);
        assert_eq!(s.queue_high_water, 2);
        assert_eq!(s.rollbacks, 1);
        assert_eq!(s.rollback_bytes, 7);
        assert_eq!(s.reseeds_granted, 1);
        assert_eq!(s.reseeds_stalled, 1);
        assert_eq!(s.session_bytes, 32);
        let s1 = t.shard_snapshot(1);
        assert_eq!(s1.shard, 1);
        assert_eq!(s1.chunks_produced, 1);
        assert_eq!(s1.health_failures, 1);
        assert_eq!(s1.restarts, 1);
        assert_eq!(s1.retirements, 1);
    }

    #[test]
    fn tracer_drops_oldest_and_keeps_timestamps_monotonic() {
        let tracer = Tracer::deterministic(3);
        for shard in 0..5usize {
            tracer.record(StageEvent::ChunkProduced { shard, bytes: 1 });
        }
        assert_eq!(tracer.recorded(), 5);
        assert_eq!(tracer.dropped(), 2);
        let events = tracer.events();
        assert_eq!(events.len(), 3);
        // Oldest two evicted: shards 2, 3, 4 remain with ts 2, 3, 4.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ts, i as u64 + 2);
            assert_eq!(
                e.event,
                StageEvent::ChunkProduced {
                    shard: i + 2,
                    bytes: 1
                }
            );
        }
    }

    #[test]
    fn chrome_export_names_every_track() {
        let tracer = Tracer::deterministic(16);
        tracer.record(StageEvent::HealthVerdict {
            shard: 0,
            passed: true,
        });
        tracer.record(StageEvent::ChunkProduced { shard: 0, bytes: 8 });
        tracer.record(StageEvent::ChunkMerged { shard: 0, bytes: 8 });
        tracer.record(StageEvent::Retired {
            shard: 0,
            consecutive_restarts: 0,
        });
        let json = tracer.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"merge/session\""));
        assert!(json.contains("\"shard-0\""));
        assert!(json.contains("\"chunk_produced\""));
        assert!(json.contains("\"retired\""));
    }
}
