//! Gate-level netlists of the DH-TRNG circuits (paper Figures 3–5).
//!
//! Two emitters:
//!
//! * [`entropy_unit_netlist`] — one standalone dynamic hybrid entropy
//!   unit (Fig. 3a): RO1 (3-stage, NAND-enabled) for jitter extraction,
//!   RO2 (MUX-switched inverter/holding loop, selected by RO1's output)
//!   for dynamic-switching metastability, two sampling DFFs and the
//!   output XOR;
//! * [`dh_trng_netlist`] — the full architecture (Fig. 5a): two nested
//!   coupling cells (each: two entropy units reversely inserted into two
//!   XOR rings, Fig. 4a), the feedback line (Fig. 4b), and the 12-tap
//!   multistage sampling array with XOR tree and output/feedback DFFs.
//!
//! The full netlist lands exactly on the paper's §3.3 resource count:
//! **20 LUTs + 4 MUXes** in the entropy source and **3 LUTs + 14 DFFs**
//! in the sampling array (23/4/14 total).

use dhtrng_fpga::packer::Region;
use dhtrng_fpga::Device;
use dhtrng_sim::{DffSpec, Femtos, GateKind, NetId, Netlist};

/// Fraction of a stage delay contributed as per-edge RMS jitter
/// (σ₀/T₀ = 0.7 % spread over 2N stage traversals of a 3-stage ring).
const STAGE_JITTER_FRACTION: f64 = 0.017;

/// Ports of a standalone entropy unit netlist.
#[derive(Debug, Clone, Copy)]
pub struct EntropyUnitPorts {
    /// Enable input (drive low to settle, high to run).
    pub en: NetId,
    /// Sampling clock input.
    pub clk: NetId,
    /// RO1 tap (jitter ring output, also RO2's MUX select).
    pub r1: NetId,
    /// RO2 tap (hybrid ring output).
    pub r2: NetId,
    /// RO1 sample.
    pub q1: NetId,
    /// RO2 sample.
    pub q2: NetId,
    /// Unit output (Q1 xor Q2).
    pub out: NetId,
}

/// Ports of the full DH-TRNG netlist.
#[derive(Debug, Clone)]
pub struct NetlistPorts {
    /// Enable input.
    pub en: NetId,
    /// Sampling clock input.
    pub clk: NetId,
    /// Random output (one bit per clock).
    pub out: NetId,
    /// Feedback net (output DFF re-sampled, drives the central rings).
    pub feedback: NetId,
    /// The 12 ring taps feeding the sampling array.
    pub taps: Vec<NetId>,
}

struct UnitNets {
    r1: NetId,
    r2: NetId,
}

/// Builds one entropy unit's rings into `nl`.
///
/// `loop_in` closes RO1's loop: the unit's own `r1` for a standalone
/// unit, or the central coupling ring for the full design ("reversely
/// inserted into the XOR ring", Fig. 4a). Returns the ring taps.
fn build_unit_rings(
    nl: &mut Netlist,
    label: &str,
    en: NetId,
    loop_in: Option<NetId>,
    stage: Femtos,
    jitter: Femtos,
    mux_delay: Femtos,
) -> UnitNets {
    // RO1: NAND(en, loop) -> a -> INV -> b -> INV -> r1 (3 stages).
    let a = nl.add_net(format!("{label}_ro1_a"));
    let b = nl.add_net(format!("{label}_ro1_b"));
    let r1 = nl.add_net(format!("{label}_r1"));
    let closing = loop_in.unwrap_or(r1);
    nl.add_gate_jittered(GateKind::Nand2, &[en, closing], a, stage, jitter);
    nl.add_gate_jittered(GateKind::Inv, &[a], b, stage, jitter);
    nl.add_gate_jittered(GateKind::Inv, &[b], r1, stage, jitter);

    // RO2: MUX(sel = r1; 0 -> inverter loop, 1 -> holding loop) -> r2.
    // The holding loop is a self-reference, so r2 needs a defined
    // power-up level (real silicon settles to one; HDL X would lock the
    // loop undefined forever).
    let r2 = nl.add_net_with_initial(format!("{label}_r2"), dhtrng_sim::Level::Low);
    let r2_inv = nl.add_net_with_initial(format!("{label}_r2_inv"), dhtrng_sim::Level::High);
    nl.add_gate_jittered(GateKind::Inv, &[r2], r2_inv, stage, jitter);
    nl.add_gate_jittered(GateKind::Mux2, &[r1, r2_inv, r2], r2, mux_delay, jitter);

    UnitNets { r1, r2 }
}

/// Emits the netlist of one standalone dynamic hybrid entropy unit
/// (paper Fig. 3a) for the given device's delays.
pub fn entropy_unit_netlist(device: &Device) -> (Netlist, EntropyUnitPorts) {
    let stage = Femtos::from_seconds(device.stage_delay_s());
    let jitter = stage.scale(STAGE_JITTER_FRACTION);
    let mux_delay = Femtos::from_seconds(device.net_delay_s);

    let mut nl = Netlist::new();
    let en = nl.add_net("en");
    let clk = nl.add_net("clk");
    let rings = build_unit_rings(&mut nl, "u", en, None, stage, jitter, mux_delay);

    let q1 = nl.add_net("q1");
    let q2 = nl.add_net("q2");
    nl.add_dff(DffSpec::fpga(rings.r1, clk, q1));
    nl.add_dff(DffSpec::fpga(rings.r2, clk, q2));
    let out = nl.add_net("out");
    nl.add_gate(
        GateKind::Xor2,
        &[q1, q2],
        out,
        Femtos::from_seconds(device.lut_delay_s),
    );

    (
        nl,
        EntropyUnitPorts {
            en,
            clk,
            r1: rings.r1,
            r2: rings.r2,
            q1,
            q2,
            out,
        },
    )
}

/// Emits the full DH-TRNG netlist (paper Fig. 5a): 2 coupling cells of
/// 2 units + 2 central XOR rings each, a 12-DFF sampling array, a 3-LUT
/// XOR tree, the output DFF and the feedback DFF.
pub fn dh_trng_netlist(device: &Device) -> (Netlist, NetlistPorts) {
    let stage = Femtos::from_seconds(device.stage_delay_s());
    let jitter = stage.scale(STAGE_JITTER_FRACTION);
    let mux_delay = Femtos::from_seconds(device.net_delay_s);
    let lut = Femtos::from_seconds(device.lut_delay_s);

    let mut nl = Netlist::new();
    let en = nl.add_net("en");
    let clk = nl.add_net("clk");
    let feedback = nl.add_net("feedback");

    let mut taps: Vec<NetId> = Vec::with_capacity(12);
    for cell in 0..2 {
        let ua = build_unit_rings(
            &mut nl,
            &format!("cell{cell}_ua"),
            en,
            None,
            stage,
            jitter,
            mux_delay,
        );
        let ub = build_unit_rings(
            &mut nl,
            &format!("cell{cell}_ub"),
            en,
            None,
            stage,
            jitter,
            mux_delay,
        );
        // Central coupling rings (Fig. 4a): each is a self-looped XOR
        // (one LUT6) stimulated by one tap of each unit — "reversely"
        // crossed between the two rings — plus the feedback line
        // (f(x) = x1 + x2 + x'_r). When the stimulus parity is odd the
        // loop inverts itself every gate delay (oscillation); when even
        // it latches — the disorderly mode switching of §3.2.
        let c1 = nl.add_net_with_initial(format!("cell{cell}_central1"), dhtrng_sim::Level::Low);
        let c2 = nl.add_net_with_initial(format!("cell{cell}_central2"), dhtrng_sim::Level::Low);
        nl.add_gate_jittered(
            GateKind::XorN,
            &[c1, ua.r1, ub.r2, feedback],
            c1,
            stage,
            jitter,
        );
        nl.add_gate_jittered(
            GateKind::XorN,
            &[c2, ua.r2, ub.r1, feedback],
            c2,
            stage,
            jitter,
        );

        taps.extend([ua.r1, ua.r2, ub.r1, ub.r2, c1, c2]);
    }

    // Multistage sampling array: 12 DFFs -> 2x XOR6 -> XOR2 -> output DFF.
    let q: Vec<NetId> = taps
        .iter()
        .enumerate()
        .map(|(i, &tap)| {
            let qn = nl.add_net(format!("q{i}"));
            nl.add_dff(DffSpec::fpga(tap, clk, qn));
            qn
        })
        .collect();
    let t1 = nl.add_net("xor_lo");
    let t2 = nl.add_net("xor_hi");
    nl.add_gate(GateKind::XorN, &q[0..6], t1, lut);
    nl.add_gate(GateKind::XorN, &q[6..12], t2, lut);
    let out_comb = nl.add_net("out_comb");
    nl.add_gate(GateKind::Xor2, &[t1, t2], out_comb, lut);

    let out = nl.add_net("out");
    nl.add_dff(DffSpec::fpga(out_comb, clk, out));
    // Feedback DFF retimes the output before it re-enters the central
    // rings (Fig. 4b's additional flip-flop).
    nl.add_dff(DffSpec::fpga(out, clk, feedback));

    (
        nl,
        NetlistPorts {
            en,
            clk,
            out,
            feedback,
            taps,
        },
    )
}

/// The packing regions of the reference implementation, consistent with
/// [`dh_trng_netlist`]'s gate inventory (used for the 8-slice result).
pub fn dh_trng_regions() -> Vec<Region> {
    Region::dh_trng_reference()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_fpga::ResourceReport;
    use dhtrng_noise::NoiseRng;
    use dhtrng_sim::{Engine, Level};

    #[test]
    fn full_netlist_matches_paper_resources() {
        let (nl, _) = dh_trng_netlist(&Device::artix7());
        let r = nl.resources();
        assert_eq!(
            (r.luts, r.muxes, r.dffs),
            (23, 4, 14),
            "paper §3.3 inventory"
        );
        nl.validate().expect("netlist must validate");
    }

    #[test]
    fn netlist_resources_match_packer_regions() {
        let (nl, _) = dh_trng_netlist(&Device::virtex6());
        let total: ResourceReport = dh_trng_regions().iter().map(Region::resources).sum();
        let r = nl.resources();
        assert_eq!(ResourceReport::new(r.luts, r.muxes, r.dffs), total);
    }

    #[test]
    fn unit_netlist_validates_and_is_small() {
        let (nl, _) = entropy_unit_netlist(&Device::artix7());
        nl.validate().expect("unit netlist must validate");
        let r = nl.resources();
        assert_eq!((r.luts, r.muxes, r.dffs), (5, 1, 2));
    }

    #[test]
    fn unit_rings_oscillate_when_enabled() {
        let device = Device::artix7();
        let (nl, ports) = entropy_unit_netlist(&device);
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(5)).unwrap();
        e.drive(ports.en, Femtos::ZERO, Level::Low);
        e.drive(ports.en, Femtos::from_ns(10.0), Level::High);
        let p1 = e.attach_probe(ports.r1);
        let p2 = e.attach_probe(ports.r2);
        e.run_until(Femtos::from_ns(400.0));
        let w1 = e.waveform(p1).unwrap();
        let w2 = e.waveform(p2).unwrap();
        assert!(w1.transition_count() > 50, "RO1 must free-run");
        assert!(w2.transition_count() > 20, "RO2 must switch dynamically");
        // RO1 period ~ 2 * 3 * stage delay.
        let period = w1.mean_period().expect("oscillating");
        let expected = 6.0 * device.stage_delay_s();
        let err = (period.as_seconds() - expected).abs() / expected;
        assert!(err < 0.1, "RO1 period {period} vs {:.3} ns", expected * 1e9);
    }

    #[test]
    fn ro2_holds_when_r1_is_high() {
        // Drive the select manually: build just the RO2 loop via the unit
        // builder with en low (RO1 settles, r1 becomes a constant).
        let device = Device::artix7();
        let (nl, ports) = entropy_unit_netlist(&device);
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(6)).unwrap();
        // en = 0 -> NAND output 1 -> after two inverters r1 = 1 -> RO2 in
        // holding mode: r2 settles to a constant.
        e.drive(ports.en, Femtos::ZERO, Level::Low);
        e.run_until(Femtos::from_ns(50.0));
        assert_eq!(e.value(ports.r1), Level::High);
        let p2 = e.attach_probe(ports.r2);
        e.run_until(Femtos::from_ns(250.0));
        assert_eq!(
            e.waveform(p2).unwrap().transition_count(),
            0,
            "holding loop must freeze r2"
        );
    }

    #[test]
    fn full_design_produces_varying_bits() {
        let device = Device::artix7();
        let (nl, ports) = dh_trng_netlist(&device);
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(7)).unwrap();
        e.drive(ports.en, Femtos::ZERO, Level::Low);
        e.drive(ports.en, Femtos::from_ns(20.0), Level::High);
        // 620 MHz sampling clock, first edge after the rings spin up.
        let period = Femtos::from_seconds(1.0 / 620.0e6);
        e.add_clock_50(ports.clk, Femtos::from_ns(40.0), period);
        let probe = e.attach_probe(ports.out);
        e.run_until(Femtos::from_ns(40.0) + period.mul_u64(512));
        let wave = e.waveform(probe).unwrap();
        assert!(
            wave.transition_count() > 50,
            "output must toggle: {} transitions",
            wave.transition_count()
        );
    }

    #[test]
    fn all_taps_are_live() {
        let device = Device::virtex6();
        let (nl, ports) = dh_trng_netlist(&device);
        assert_eq!(ports.taps.len(), 12, "12 rings feed the sampling array");
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(8)).unwrap();
        e.drive(ports.en, Femtos::ZERO, Level::Low);
        e.drive(ports.en, Femtos::from_ns(20.0), Level::High);
        let probes: Vec<_> = ports.taps.iter().map(|&t| e.attach_probe(t)).collect();
        e.run_until(Femtos::from_ns(400.0));
        for (i, p) in probes.iter().enumerate() {
            assert!(
                e.waveform(*p).unwrap().transition_count() > 5,
                "tap {i} must toggle"
            );
        }
    }
}
