//! Bit-sliced lane-parallel generation: up to 64 independent DH-TRNG
//! instances advanced together through one SIMD-friendly kernel.
//!
//! The paper's deployment story is *many identical hybrid units in
//! parallel*; the scalar [`BlockKernel`](crate::batch::BlockKernel)
//! leaves that parallelism on the table by evaluating one instance per
//! call. [`SlicedKernel`] packs N ≤ 64 independently-seeded instances
//! into structure-of-arrays state — beat phases as contiguous `f64`
//! rows, Bernoulli decisions as lane-parallel `u64` masks, one
//! xoshiro256++ noise state per lane advanced with blend-masked
//! updates — so one pass over the arrays advances every instance by one
//! cycle. Every per-cycle operation is branch-free across lanes:
//!
//! * **beat advance** is `phase += increment` with a compare-subtract
//!   wrap and a `phase < duty` compare, both of which vectorise
//!   directly (the same exact-arithmetic argument as the scalar
//!   kernel's: operands stay in `[0, 2)`, so compare-subtract equals
//!   `rem_euclid(1.0)` bit-for-bit);
//! * **Bernoulli threshold tests** are integer compares against
//!   precomputed [`NoiseRng::bernoulli_threshold`] values;
//! * **data-dependent draws** (the half/bias/feedback draws a scalar
//!   instance performs conditionally) are replicated with *masked* RNG
//!   steps: every lane computes the candidate next state, and a
//!   per-lane blend keeps or discards it — so each lane consumes
//!   exactly the draws its scalar twin would, in the same order;
//! * **feedback kicks** use the identity `phase + 0.0 == phase` (exact
//!   for the non-negative phases and multipliers the model produces) to
//!   apply a zero kick to non-kicking lanes instead of branching.
//!
//! # Lane-for-lane equivalence
//!
//! Lane `l` of a [`SlicedKernel`] built from N [`Lane`] snapshots
//! produces **bit-identical** output to a scalar generator continuing
//! from snapshot `l`: same `f64` operations on the same operands, same
//! integer threshold tests, same per-lane draw schedule. The
//! workspace-level `tests/slicing.rs` proptest pins this against
//! [`DhTrng`] and against randomly-configured synthetic lanes; the
//! streaming engine relies on it to make its sliced mode
//! stream-identical to its scalar mode.
//!
//! # Runtime dispatch
//!
//! The per-cycle sweep has two compilations: a portable safe-Rust body
//! (every target), and the same body compiled with
//! `#[target_feature(enable = "avx2")]` on x86-64, selected once at
//! construction via `is_x86_feature_detected!`. The bodies are the same
//! source — the AVX2 copy just licenses the autovectoriser to use
//! 256-bit lanes — so the two paths cannot diverge. Set `DHTRNG_SIMD=
//! portable` to pin the portable body (e.g. to cross-check the
//! dispatch); the output is identical either way, only the speed
//! changes.
//!
//! # Example
//!
//! ```
//! use dhtrng_core::{DhTrng, SlicedDhTrng, Trng};
//!
//! // Eight independent instances, generated lane-parallel.
//! let instances: Vec<DhTrng> = (0..8)
//!     .map(|i| DhTrng::builder().seed(1000 + i).build())
//!     .collect();
//! let mut sliced = SlicedDhTrng::new(instances).expect("8 <= 64 lanes");
//! let mut buf = [0u8; 512];
//! sliced.fill_bytes(&mut buf); // lane-interleaved stream, 8 bytes per lane per round
//! assert_eq!(sliced.lanes(), 8);
//! ```

use dhtrng_noise::NoiseRng;

use crate::batch::MAX_BEATS;
use crate::model::BeatOscillator;
use crate::trng::{DhTrng, Trng};

/// Maximum number of lanes a [`SlicedKernel`] carries — one per bit of
/// the `u64` decision masks.
pub const MAX_LANES: usize = 64;

/// Lane-count granularity of the state arrays: active lanes are padded
/// up to a multiple of this with inert lanes so every sweep runs over
/// whole SIMD vectors (4 × `f64` / `u64` = one 256-bit register).
const LANE_STRIDE: usize = 4;

/// Inert padding values for unused beat rows and padding lanes: a beat
/// that never contributes (`0.5 < 0.25` is false forever) and never
/// moves (`increment`, kick multiplier both zero keep the phase at
/// exactly `0.5` under the kernel's `x + 0.0 == x` identity).
const PAD_PHASE: f64 = 0.5;
const PAD_DUTY: f64 = 0.25;

/// Why a [`SlicedKernel`] / [`SlicedDhTrng`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceError {
    /// Lane count outside `1..=`[`MAX_LANES`].
    LaneCount {
        /// Lanes offered.
        got: usize,
    },
    /// A lane's beat bank exceeds [`MAX_BEATS`] (same capacity as the
    /// scalar kernel, so every sliceable lane is also
    /// scalar-kernelable).
    TooManyBeats {
        /// Offending lane index.
        lane: usize,
        /// Oscillators in that lane's bank.
        got: usize,
    },
    /// A lane's feedback multiplier list does not match its beat count.
    MultiplierCount {
        /// Offending lane index.
        lane: usize,
        /// Beats in the lane.
        expected: usize,
        /// Multipliers supplied.
        got: usize,
    },
    /// A lane's feedback scale or multiplier is negative or non-finite,
    /// which would break the exact zero-kick identity the branch-free
    /// feedback sweep relies on.
    InvalidFeedback {
        /// Offending lane index.
        lane: usize,
    },
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LaneCount { got } => {
                write!(f, "sliced kernel takes 1..={MAX_LANES} lanes, got {got}")
            }
            Self::TooManyBeats { lane, got } => write!(
                f,
                "lane {lane}: beat bank of {got} exceeds the kernel capacity of {MAX_BEATS}"
            ),
            Self::MultiplierCount {
                lane,
                expected,
                got,
            } => write!(
                f,
                "lane {lane}: {got} feedback multipliers for {expected} beats"
            ),
            Self::InvalidFeedback { lane } => write!(
                f,
                "lane {lane}: feedback scale and multipliers must be finite and non-negative"
            ),
        }
    }
}

impl std::error::Error for SliceError {}

/// A suspended scalar generator, ready to be loaded into one lane of a
/// [`SlicedKernel`]: the beat bank, the calibrated probabilities, the
/// feedback strategy, and the exact noise-stream position.
///
/// Obtained from a live generator via [`DhTrng::slice_lane`], or built
/// directly for synthetic configurations (tests sweep random banks
/// through [`Lane::new`]).
#[derive(Debug, Clone)]
pub struct Lane {
    beats: Vec<BeatOscillator>,
    p_rand: f64,
    bias: f64,
    feedback: Option<(f64, Vec<f64>)>,
    rng_state: [u64; 4],
}

impl Lane {
    /// Assembles a lane snapshot.
    ///
    /// `feedback` carries the kick scale and one multiplier per beat
    /// (`None` for generators without a feedback line); `rng_state` is
    /// a [`NoiseRng::state`] snapshot positioning the lane's noise
    /// stream. Validation happens at [`SlicedKernel::new`], which knows
    /// the lane's index.
    pub fn new(
        beats: Vec<BeatOscillator>,
        p_rand: f64,
        bias: f64,
        feedback: Option<(f64, Vec<f64>)>,
        rng_state: [u64; 4],
    ) -> Self {
        Self {
            beats,
            p_rand,
            bias,
            feedback,
            rng_state,
        }
    }

    /// The lane's beat bank.
    pub fn beats(&self) -> &[BeatOscillator] {
        &self.beats
    }

    /// Checks the invariants the kernel needs from lane `index`.
    fn validate(&self, index: usize) -> Result<(), SliceError> {
        if self.beats.len() > MAX_BEATS {
            return Err(SliceError::TooManyBeats {
                lane: index,
                got: self.beats.len(),
            });
        }
        if let Some((scale, mults)) = &self.feedback {
            if mults.len() != self.beats.len() {
                return Err(SliceError::MultiplierCount {
                    lane: index,
                    expected: self.beats.len(),
                    got: mults.len(),
                });
            }
            let bad = |x: f64| !x.is_finite() || x < 0.0;
            if bad(*scale) || mults.iter().any(|&m| bad(m)) {
                return Err(SliceError::InvalidFeedback { lane: index });
            }
        }
        Ok(())
    }
}

/// Which compilation of the per-cycle sweep this kernel dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// Safe portable body (every target; also the `DHTRNG_SIMD=portable`
    /// override).
    Portable,
    /// The same body compiled under `#[target_feature(enable = "avx2")]`
    /// (x86-64 with runtime-detected AVX2 only).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

fn detect_backend() -> Backend {
    let forced = std::env::var("DHTRNG_SIMD").ok();
    if forced.as_deref() == Some("portable") {
        return Backend::Portable;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    Backend::Portable
}

/// The lane-parallel generation kernel (see the [module docs](self)).
///
/// All state is structure-of-arrays, padded to a `LANE_STRIDE` (= 4)
/// multiple of lanes and preallocated at construction — steady-state
/// generation performs no heap allocation (the streaming engine's
/// zero-alloc pin covers the sliced path too).
#[derive(Debug, Clone)]
pub struct SlicedKernel {
    lanes: usize,
    /// Padded lane count (array stride).
    width: usize,
    /// Padded beat-row count (max bank size across lanes).
    rows: usize,
    /// Real beat count per active lane.
    beat_counts: Vec<usize>,
    /// Row-major `[rows × width]` beat state.
    phases: Vec<f64>,
    increments: Vec<f64>,
    duties: Vec<f64>,
    kick_mults: Vec<f64>,
    /// Per-lane feedback kick scale (0.0 on lanes without feedback).
    kick_scales: Vec<f64>,
    /// Per-lane wide mask (all-ones/zero): does this lane draw a
    /// feedback uniform on bit = 1?
    fb_enabled: Vec<u64>,
    p_rand_thr: Vec<u64>,
    half_thr: Vec<u64>,
    bias_thr: Vec<u64>,
    /// Lane-parallel xoshiro256++ state.
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
    /// Static: any lane has feedback (skips the kick sweep entirely
    /// for feedback-free banks).
    any_feedback: bool,
    backend: Backend,
    // Preallocated per-cycle scratch (all `width` long). `kicks` also
    // carries one cycle's feedback kicks into the next cycle's fused
    // beat sweep (always flushed before `cycles_impl` returns).
    beat_xor: Vec<u64>,
    kicks: Vec<f64>,
    words: Vec<u64>,
}

impl SlicedKernel {
    /// Builds a kernel over `lanes` suspended generators.
    ///
    /// # Errors
    ///
    /// A typed [`SliceError`] when the lane count is outside
    /// `1..=`[`MAX_LANES`] or any lane violates the kernel's structural
    /// invariants (bank size, feedback shape, non-negative feedback).
    pub fn new(lanes: &[Lane]) -> Result<Self, SliceError> {
        if !(1..=MAX_LANES).contains(&lanes.len()) {
            return Err(SliceError::LaneCount { got: lanes.len() });
        }
        for (index, lane) in lanes.iter().enumerate() {
            lane.validate(index)?;
        }
        let width = lanes.len().next_multiple_of(LANE_STRIDE);
        let rows = lanes.iter().map(|l| l.beats.len()).max().unwrap_or(0);
        let mut kernel = Self {
            lanes: lanes.len(),
            width,
            rows,
            beat_counts: vec![0; lanes.len()],
            phases: vec![PAD_PHASE; rows * width],
            increments: vec![0.0; rows * width],
            duties: vec![PAD_DUTY; rows * width],
            kick_mults: vec![0.0; rows * width],
            kick_scales: vec![0.0; width],
            fb_enabled: vec![0; width],
            p_rand_thr: vec![0; width],
            half_thr: vec![0; width],
            bias_thr: vec![0; width],
            s0: vec![0; width],
            s1: vec![0; width],
            s2: vec![0; width],
            s3: vec![0; width],
            any_feedback: false,
            backend: detect_backend(),
            beat_xor: vec![0; width],
            kicks: vec![0.0; width],
            words: vec![0; width],
        };
        for (index, lane) in lanes.iter().enumerate() {
            kernel.load_lane(index, lane);
        }
        // Padding lanes still advance a (never observed) noise state on
        // the unconditional draw; give them distinct non-zero states.
        for pad in lanes.len()..width {
            let state = NoiseRng::seed_from_u64(0xD1CE_0000 + pad as u64).state();
            kernel.s0[pad] = state[0];
            kernel.s1[pad] = state[1];
            kernel.s2[pad] = state[2];
            kernel.s3[pad] = state[3];
        }
        Ok(kernel)
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Name of the dispatched sweep compilation (`"avx2"` or
    /// `"portable"`), for diagnostics and bench reports.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Portable => "portable",
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => "avx2",
        }
    }

    /// (Re)loads lane `lane`'s full hot state from a snapshot: beat
    /// bank, probabilities, feedback strategy, noise-stream position.
    /// The streaming engine uses this after a health-triggered restart
    /// re-derives the lane's power-up state scalar-side.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or the snapshot's bank exceeds
    /// the row capacity this kernel was built with.
    pub fn load_lane(&mut self, lane: usize, state: &Lane) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        assert!(
            state.beats.len() <= self.rows,
            "snapshot bank of {} exceeds the kernel's {} rows",
            state.beats.len(),
            self.rows
        );
        state
            .validate(lane)
            .expect("snapshot passes lane invariants");
        self.beat_counts[lane] = state.beats.len();
        let (scale, mults): (f64, &[f64]) = match &state.feedback {
            Some((scale, mults)) => (*scale, mults),
            None => (0.0, &[]),
        };
        for row in 0..self.rows {
            let at = row * self.width + lane;
            if let Some(beat) = state.beats.get(row) {
                self.phases[at] = beat.phase();
                self.increments[at] = beat.increment();
                self.duties[at] = beat.duty();
                self.kick_mults[at] = mults.get(row).copied().unwrap_or(0.0);
            } else {
                self.phases[at] = PAD_PHASE;
                self.increments[at] = 0.0;
                self.duties[at] = PAD_DUTY;
                self.kick_mults[at] = 0.0;
            }
        }
        // A feedback line with scale 0.0 is the scalar kernel's
        // "disabled" encoding: such a lane draws no feedback uniform.
        let enabled = state.feedback.is_some() && scale != 0.0;
        self.kick_scales[lane] = if enabled { scale } else { 0.0 };
        self.fb_enabled[lane] = 0u64.wrapping_sub(u64::from(enabled));
        self.p_rand_thr[lane] = NoiseRng::bernoulli_threshold(state.p_rand);
        self.half_thr[lane] = NoiseRng::bernoulli_threshold(0.5);
        // The reference path draws bernoulli(2 * bias).
        self.bias_thr[lane] = NoiseRng::bernoulli_threshold(2.0 * state.bias);
        self.s0[lane] = state.rng_state[0];
        self.s1[lane] = state.rng_state[1];
        self.s2[lane] = state.rng_state[2];
        self.s3[lane] = state.rng_state[3];
        self.any_feedback = self.fb_enabled.iter().any(|&e| e != 0);
    }

    /// Writes lane `lane`'s advanced beat phases back into a scalar
    /// bank (the sliced counterpart of
    /// [`BlockKernel::write_back`](crate::batch::BlockKernel::write_back)).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `beats` is not the size of
    /// the bank the lane was loaded from.
    pub fn store_lane(&self, lane: usize, beats: &mut [BeatOscillator]) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        assert_eq!(
            beats.len(),
            self.beat_counts[lane],
            "store_lane to a different bank"
        );
        for (row, beat) in beats.iter_mut().enumerate() {
            beat.set_phase(self.phases[row * self.width + lane]);
        }
    }

    /// Lane `lane`'s current noise-stream position, resumable via
    /// [`NoiseRng::from_state`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_rng_state(&self, lane: usize) -> [u64; 4] {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        [self.s0[lane], self.s1[lane], self.s2[lane], self.s3[lane]]
    }

    /// Advances **every** lane by `n` cycles (1..=64) and returns the
    /// per-lane output words: word `l` holds lane `l`'s `n` bits with
    /// the oldest cycle in bit `n - 1` — exactly the packing the scalar
    /// [`Trng::next_bits`] produces for each lane.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 64`.
    pub fn generate(&mut self, n: u32) -> &[u64] {
        assert!((1..=64).contains(&n), "generate takes 1..=64, got {n}");
        self.words.fill(0);
        match self.backend {
            Backend::Portable => self.cycles_portable(n),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                // SAFETY: Backend::Avx2 is only ever selected by
                // `detect_backend` after `is_x86_feature_detected!
                // ("avx2")` returned true on this machine, so the
                // target-feature function's contract holds.
                #[allow(unsafe_code)]
                unsafe {
                    self.cycles_avx2(n)
                }
            }
        }
        &self.words[..self.lanes]
    }

    /// Portable compilation of the sweep.
    fn cycles_portable(&mut self, n: u32) {
        self.cycles_impl(n);
    }

    /// AVX2 compilation of the *same* sweep body: `target_feature`
    /// licenses the autovectoriser to emit 256-bit operations for the
    /// inlined `cycles_impl`. Calling it is `unsafe` only because the
    /// caller must guarantee the CPU supports AVX2 (the dispatch in
    /// [`generate`](Self::generate) checks at construction).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn cycles_avx2(&mut self, n: u32) {
        self.cycles_impl(n);
    }

    /// One shared sweep body, `inline(always)` so each dispatch wrapper
    /// compiles it under its own target features.
    ///
    /// Two fusions keep the per-cycle work down to a single pass over
    /// the beat state plus a single register-resident pass over the
    /// lane state (instead of ~ten scratch-array passes):
    ///
    /// * the previous cycle's feedback kicks are folded into the next
    ///   cycle's beat advance ([`kick_beat_row`] performs kick-wrap
    ///   then increment-wrap — the exact op sequence of the split
    ///   sweeps), with one [`kick_row`] flush after the final cycle so
    ///   the phases the rest of the API observes are always fully
    ///   advanced;
    /// * draws 1–4 (P_rand, half, bias, feedback uniform), their
    ///   threshold tests, the bit select, and the word shift all run in
    ///   one pass over the lanes ([`decision_pass`](Self::decision_pass)).
    #[inline(always)]
    fn cycles_impl(&mut self, n: u32) {
        let width = self.width;
        for cycle in 0..n {
            self.beat_xor[..width].fill(0);
            if self.any_feedback && cycle > 0 {
                for row in 0..self.rows {
                    let span = row * width..(row + 1) * width;
                    kick_beat_row(
                        &mut self.phases[span.clone()],
                        &self.kick_mults[span.clone()],
                        &self.kicks,
                        &self.increments[span.clone()],
                        &self.duties[span],
                        &mut self.beat_xor,
                    );
                }
            } else {
                for row in 0..self.rows {
                    let span = row * width..(row + 1) * width;
                    beat_row(
                        &mut self.phases[span.clone()],
                        &self.increments[span.clone()],
                        &self.duties[span],
                        &mut self.beat_xor,
                    );
                }
            }
            if self.any_feedback {
                self.decision_pass::<true>();
            } else {
                self.decision_pass::<false>();
            }
        }
        // Flush the final cycle's kicks so external state is exact.
        if self.any_feedback {
            for row in 0..self.rows {
                let span = row * width..(row + 1) * width;
                kick_row(
                    &mut self.phases[span.clone()],
                    &self.kick_mults[span],
                    &self.kicks,
                );
            }
        }
    }

    /// Draws 1–4 with their threshold tests, the per-lane bit
    /// selection, the feedback kick amounts, and the word shift — one
    /// branch-free pass over the lanes, everything per-lane held in
    /// registers. `FEEDBACK = false` (a bank with no feedback lanes)
    /// compiles the draw-4 block out entirely.
    ///
    /// Lanes advance their noise state exactly as their scalar twin
    /// would: a lane whose mask is 0 for a draw keeps its old xoshiro
    /// state ([`blend`]) and contributes a zero draw (so a masked
    /// feedback kick is exactly `+0.0`).
    #[inline(always)]
    fn decision_pass<const FEEDBACK: bool>(&mut self) {
        let n = self.width;
        let s0 = &mut self.s0[..n];
        let s1 = &mut self.s1[..n];
        let s2 = &mut self.s2[..n];
        let s3 = &mut self.s3[..n];
        let beat_xor = &self.beat_xor[..n];
        let p_rand_thr = &self.p_rand_thr[..n];
        let half_thr = &self.half_thr[..n];
        let bias_thr = &self.bias_thr[..n];
        let fb_enabled = &self.fb_enabled[..n];
        let kick_scales = &self.kick_scales[..n];
        let kicks = &mut self.kicks[..n];
        let words = &mut self.words[..n];
        // Everything below works on *wide* masks (all-ones = true,
        // zero = false) so compare results feed straight into blends
        // and draw masking with no 0/1 narrowing in the loop; the one
        // `& 1` at the word shift is the only narrowing per cycle.
        for l in 0..n {
            let (mut a, mut b, mut c, mut d) = (s0[l], s1[l], s2[l], s3[l]);
            // Draw 1: the unconditional P_rand draw.
            let (out1, a1, b1, c1, d1) = xoshiro_step(a, b, c, d);
            (a, b, c, d) = (a1, b1, c1, d1);
            let accept = 0u64.wrapping_sub(u64::from((out1 >> 11) < p_rand_thr[l]));
            // Draw 2: half-threshold on accepting lanes; the rest take
            // their beat XOR.
            let (out2, a2, b2, c2, d2) = xoshiro_step(a, b, c, d);
            (a, b, c, d) = (
                blend(a, a2, accept),
                blend(b, b2, accept),
                blend(c, c2, accept),
                blend(d, d2, accept),
            );
            let half = 0u64.wrapping_sub(u64::from((out2 >> 11) < half_thr[l]));
            let mut bit = (accept & half) | (!accept & beat_xor[l]);
            // Draw 3: bias, only on lanes whose bit is still 0.
            let need = !bit;
            let (out3, a3, b3, c3, d3) = xoshiro_step(a, b, c, d);
            (a, b, c, d) = (
                blend(a, a3, need),
                blend(b, b3, need),
                blend(c, c3, need),
                blend(d, d3, need),
            );
            let bias = 0u64.wrapping_sub(u64::from((out3 >> 11) < bias_thr[l]));
            bit |= need & bias;
            if FEEDBACK {
                // Draw 4: the feedback uniform on kicking lanes; a
                // masked lane draws 0, so its kick is exactly +0.0.
                let kick = bit & fb_enabled[l];
                let (out4, a4, b4, c4, d4) = xoshiro_step(a, b, c, d);
                (a, b, c, d) = (
                    blend(a, a4, kick),
                    blend(b, b4, kick),
                    blend(c, c4, kick),
                    blend(d, d4, kick),
                );
                kicks[l] = kick_scales[l] * mantissa_to_unit((out4 & kick) >> 11);
            }
            s0[l] = a;
            s1[l] = b;
            s2[l] = c;
            s3[l] = d;
            words[l] = (words[l] << 1) | (bit & 1);
        }
    }
}

// ---- lane-parallel sweep primitives -------------------------------------
//
// Every helper takes equal-length slices, re-slices them to one common
// length up front (so the optimiser can drop bounds checks), and runs a
// branch-free per-lane loop — the shape LLVM's loop vectoriser turns
// into full-width SIMD under whichever target features the caller was
// compiled with.

/// One beat row: wrap-advance the phase, XOR the duty compare into the
/// per-lane accumulator.
#[inline(always)]
fn beat_row(phases: &mut [f64], increments: &[f64], duties: &[f64], beat_xor: &mut [u64]) {
    let n = phases.len();
    let increments = &increments[..n];
    let duties = &duties[..n];
    let beat_xor = &mut beat_xor[..n];
    for l in 0..n {
        let mut phase = phases[l] + increments[l];
        if phase >= 1.0 {
            phase -= 1.0;
        }
        phases[l] = phase;
        // Accumulate the raw all-ones/zero compare mask; the decision
        // pass reduces it to 0/1 once per cycle instead of per row.
        beat_xor[l] ^= 0u64.wrapping_sub(u64::from(phase < duties[l]));
    }
}

/// One feedback row: wrap-advance the phase by `kick × multiplier`
/// (exactly zero on non-kicking lanes).
#[inline(always)]
fn kick_row(phases: &mut [f64], mults: &[f64], kicks: &[f64]) {
    let n = phases.len();
    let mults = &mults[..n];
    let kicks = &kicks[..n];
    for l in 0..n {
        let mut phase = phases[l] + kicks[l] * mults[l];
        if phase >= 1.0 {
            phase -= 1.0;
        }
        phases[l] = phase;
    }
}

/// A beat row with the previous cycle's deferred feedback kick fused
/// in: kick-advance (wrap), then increment-advance (wrap), then the
/// duty compare — the exact op sequence of [`kick_row`] followed by
/// [`beat_row`], in one pass over the row instead of two.
#[inline(always)]
fn kick_beat_row(
    phases: &mut [f64],
    mults: &[f64],
    kicks: &[f64],
    increments: &[f64],
    duties: &[f64],
    beat_xor: &mut [u64],
) {
    let n = phases.len();
    let mults = &mults[..n];
    let kicks = &kicks[..n];
    let increments = &increments[..n];
    let duties = &duties[..n];
    let beat_xor = &mut beat_xor[..n];
    for l in 0..n {
        let mut phase = phases[l] + kicks[l] * mults[l];
        if phase >= 1.0 {
            phase -= 1.0;
        }
        phase += increments[l];
        if phase >= 1.0 {
            phase -= 1.0;
        }
        phases[l] = phase;
        beat_xor[l] ^= 0u64.wrapping_sub(u64::from(phase < duties[l]));
    }
}

/// One xoshiro256++ (Blackman & Vigna) step — the vendored `StdRng`'s
/// `next_u64` — as a pure function: `(output, next state)`.
#[inline(always)]
fn xoshiro_step(a: u64, b: u64, c: u64, d: u64) -> (u64, u64, u64, u64, u64) {
    let out = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
    let t = b << 17;
    let c2 = c ^ a;
    let d2 = d ^ b;
    let b2 = b ^ c2;
    let a2 = a ^ d2;
    (out, a2, b2, c2 ^ t, d2.rotate_left(45))
}

/// `new` where `adv` is all-ones, `old` where it is zero — the masked
/// lane advance (bit-identical to each lane's scalar generator
/// performing, or skipping, one `next_u64`).
#[inline(always)]
fn blend(old: u64, new: u64, adv: u64) -> u64 {
    (old & !adv) | (new & adv)
}

/// Exact `x as f64 * 2^-53` for `x < 2^53` — the scalar
/// [`NoiseRng::uniform`]'s mantissa scaling — built from bit-ops and
/// two exact float adds so the autovectoriser does not have to
/// scalarise a `u64 → f64` conversion. (The operand is < 2^53, so the
/// reconstruction is the exact integer value; the equivalence with
/// `as f64` is pinned by this module's tests.)
#[inline(always)]
fn mantissa_to_unit(x: u64) -> f64 {
    // lo = 2^52 + (x mod 2^32), hi = 2^84 + (x div 2^32) × 2^32; both
    // exact by construction, and (hi - (2^84 + 2^52)) + lo == x exactly
    // because every intermediate is an exactly-representable integer.
    const HI_BIAS: f64 = ((1u128 << 84) + (1u128 << 52)) as f64;
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    let lo = f64::from_bits(0x4330_0000_0000_0000 | (x & 0xFFFF_FFFF));
    let hi = f64::from_bits(0x4530_0000_0000_0000 | (x >> 32));
    ((hi - HI_BIAS) + lo) * SCALE
}

/// A bank of scalar [`DhTrng`] instances generated lane-parallel
/// through one [`SlicedKernel`].
///
/// Two faces:
///
/// * **per-lane** — [`fill_lane_chunks`](Self::fill_lane_chunks)
///   produces each lane's own stream into its own buffer (bit-identical
///   to the same-seeded scalar instance); the streaming engine's sliced
///   mode maps shard `i` onto lane `i` through this, which is what
///   keeps its merged stream identical to scalar mode;
/// * **single-stream** — the [`Trng`] implementation (and with it the
///   blanket [`BlockSource`](crate::kernel::BlockSource)) exposes the
///   bank as one source whose stream interleaves the lanes' 64-bit
///   words round-robin: bytes `8(rN + l) .. 8(rN + l) + 8` are lane
///   `l`'s word of round `r` (N lanes, big-endian word bytes, exactly
///   each lane's scalar byte stream de-interleaved).
///
/// The scalar instances stay owned by the bank as the **cold** side:
/// configuration, placement, restart counters. Their generator state is
/// only synchronised with the kernel at restart boundaries
/// ([`restart_lane_and_refill`](Self::restart_lane_and_refill)); in
/// between, the kernel's lane state is authoritative.
#[derive(Debug)]
pub struct SlicedDhTrng {
    instances: Vec<DhTrng>,
    kernel: SlicedKernel,
    /// One interleave round (lanes × 8 bytes) for the single-stream
    /// face.
    staged: Vec<u8>,
    /// Consumed prefix of `staged`, in bits (the single-stream cursor).
    staged_bits: usize,
}

impl SlicedDhTrng {
    /// Packs `instances` into a lane-parallel bank (lane `i` continues
    /// instance `i`'s stream exactly).
    ///
    /// # Errors
    ///
    /// [`SliceError::LaneCount`] unless `1..=`[`MAX_LANES`] instances
    /// are supplied (the 12-ring DH-TRNG bank always satisfies the
    /// per-lane invariants).
    pub fn new(instances: Vec<DhTrng>) -> Result<Self, SliceError> {
        let lanes: Vec<Lane> = instances.iter().map(DhTrng::slice_lane).collect();
        let kernel = SlicedKernel::new(&lanes)?;
        let staged = vec![0u8; instances.len() * 8];
        let staged_bits = staged.len() * 8; // empty: everything consumed
        Ok(Self {
            instances,
            kernel,
            staged,
            staged_bits,
        })
    }

    /// Number of lanes (= instances).
    pub fn lanes(&self) -> usize {
        self.instances.len()
    }

    /// The cold side of lane `lane`: configuration, modeled throughput,
    /// placement, restart count. Its *generator* state is only current
    /// at restart boundaries (the kernel is authoritative in between).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn instance(&self, lane: usize) -> &DhTrng {
        &self.instances[lane]
    }

    /// Restarts performed by lane `lane` (see [`DhTrng::restarts`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_restarts(&self, lane: usize) -> u64 {
        self.instances[lane].restarts()
    }

    /// Name of the kernel's dispatched sweep (`"avx2"` / `"portable"`).
    pub fn backend_name(&self) -> &'static str {
        self.kernel.backend_name()
    }

    /// Advances every lane by one chunk, writing lane `i`'s next bytes
    /// into `chunks[i]` where present. Lanes with `None` advance
    /// identically but discard their output (the engine passes `None`
    /// for retired shards); because lanes are independent, a lane's
    /// stream never depends on which other chunks were materialised.
    ///
    /// # Panics
    ///
    /// Panics unless `chunks.len()` equals the lane count and every
    /// present chunk has the same length.
    pub fn fill_lane_chunks(&mut self, chunks: &mut [Option<Vec<u8>>]) {
        assert_eq!(chunks.len(), self.lanes(), "one chunk slot per lane");
        let Some(len) = chunks.iter().flatten().map(Vec::len).next() else {
            return; // nothing to materialise, nothing observable to advance
        };
        assert!(
            chunks.iter().flatten().all(|c| c.len() == len),
            "present chunks must share one length"
        );
        for word in 0..len / 8 {
            let words = self.kernel.generate(64);
            for (lane, chunk) in chunks.iter_mut().enumerate() {
                if let Some(chunk) = chunk {
                    chunk[word * 8..word * 8 + 8].copy_from_slice(&words[lane].to_be_bytes());
                }
            }
        }
        // Tail bytes: an 8-cycle chunk per byte, as the scalar
        // `BlockKernel::fill_bytes` produces them.
        for tail in len - len % 8..len {
            let words = self.kernel.generate(8);
            for (lane, chunk) in chunks.iter_mut().enumerate() {
                if let Some(chunk) = chunk {
                    chunk[tail] = words[lane] as u8;
                }
            }
        }
    }

    /// Power-cycles lane `lane` (the paper's §4.2 restart, exactly
    /// [`DhTrng::restart`]), regenerates its next chunk through the
    /// scalar batched path, and reloads the lane's kernel state from
    /// the advanced instance — so the lane continues bit-identical to a
    /// scalar shard that restarted at the same point.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn restart_lane_and_refill(&mut self, lane: usize, buf: &mut [u8]) {
        let instance = &mut self.instances[lane];
        instance.restart();
        instance.fill_bytes(buf);
        self.kernel.load_lane(lane, &instance.slice_lane());
    }

    /// Refills the interleave staging round for the single-stream face.
    fn restage(&mut self) {
        let words = self.kernel.generate(64);
        for (lane, word) in words.iter().enumerate() {
            self.staged[lane * 8..lane * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        self.staged_bits = 0;
    }
}

/// The single-stream face: the lane-interleaved word stream described
/// on [`SlicedDhTrng`]. `next_bit` walks it bit-by-bit; `fill_bytes`
/// copies staged rounds wholesale when the cursor is byte-aligned (and
/// falls back to bit-stepping when it is not), so every packing walks
/// the identical stream.
impl Trng for SlicedDhTrng {
    fn next_bit(&mut self) -> bool {
        if self.staged_bits == self.staged.len() * 8 {
            self.restage();
        }
        let bit = (self.staged[self.staged_bits / 8] >> (7 - self.staged_bits % 8)) & 1 == 1;
        self.staged_bits += 1;
        bit
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut out = 0;
        // Unaligned cursor: step bits until a byte boundary (the stream
        // is the contract; speed only matters on the aligned path).
        while self.staged_bits % 8 != 0 && out < buf.len() {
            buf[out] = crate::batch::pack_bits(8, || self.next_bit()) as u8;
            out += 1;
        }
        while out < buf.len() {
            if self.staged_bits == self.staged.len() * 8 {
                self.restage();
            }
            let from = self.staged_bits / 8;
            let take = (self.staged.len() - from).min(buf.len() - out);
            buf[out..out + take].copy_from_slice(&self.staged[from..from + take]);
            self.staged_bits += take * 8;
            out += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BlockKernel;

    fn bank(seed: u64, n: usize) -> Vec<BeatOscillator> {
        let mut rng = NoiseRng::seed_from_u64(seed);
        (0..n)
            .map(|_| BeatOscillator::new(rng.uniform(), rng.uniform(), 0.5))
            .collect()
    }

    fn synthetic_lane(seed: u64, beats: usize, feedback: bool) -> Lane {
        let mut rng = NoiseRng::seed_from_u64(seed ^ 0xABCD);
        let mults: Vec<f64> = (0..beats).map(|_| rng.uniform()).collect();
        Lane::new(
            bank(seed, beats),
            0.6 + 0.2 * rng.uniform(),
            1e-4 * rng.uniform(),
            feedback.then_some((0.3, mults)),
            NoiseRng::seed_from_u64(seed).state(),
        )
    }

    /// Scalar reference for one lane: the `BlockKernel` (itself pinned
    /// against the per-bit path) continuing from the same snapshot.
    fn scalar_words(lane: &Lane, words: usize, n: u32) -> Vec<u64> {
        let feedback = lane
            .feedback
            .as_ref()
            .map(|(scale, mults)| (*scale, &mults[..]));
        let mut kernel = BlockKernel::new(&lane.beats, lane.p_rand, lane.bias, feedback)
            .expect("test banks fit the kernel");
        let mut rng = NoiseRng::from_state(lane.rng_state);
        (0..words).map(|_| kernel.next_bits(&mut rng, n)).collect()
    }

    #[test]
    fn every_lane_matches_its_scalar_twin() {
        for feedback in [false, true] {
            let lanes: Vec<Lane> = (0..7)
                .map(|i| synthetic_lane(100 + i, 12, feedback))
                .collect();
            let mut sliced = SlicedKernel::new(&lanes).unwrap();
            let mut got: Vec<Vec<u64>> = vec![Vec::new(); lanes.len()];
            for _ in 0..32 {
                for (lane, word) in sliced.generate(64).iter().enumerate() {
                    got[lane].push(*word);
                }
            }
            for (lane, snapshot) in lanes.iter().enumerate() {
                assert_eq!(
                    got[lane],
                    scalar_words(snapshot, 32, 64),
                    "lane {lane}, feedback {feedback}"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_beat_counts_stay_independent() {
        // Lanes with different bank sizes share one kernel; the padded
        // rows must not perturb any lane.
        let lanes: Vec<Lane> = [1usize, 12, 3, 32, 7]
            .iter()
            .enumerate()
            .map(|(i, &beats)| synthetic_lane(500 + i as u64, beats, i % 2 == 0))
            .collect();
        let mut sliced = SlicedKernel::new(&lanes).unwrap();
        let words: Vec<u64> = sliced.generate(64).to_vec();
        for (lane, snapshot) in lanes.iter().enumerate() {
            assert_eq!(words[lane], scalar_words(snapshot, 1, 64)[0], "lane {lane}");
        }
    }

    #[test]
    fn partial_word_generation_packs_oldest_first() {
        let lanes = vec![synthetic_lane(9, 5, true)];
        let mut sliced = SlicedKernel::new(&lanes).unwrap();
        let mut stream = Vec::new();
        for n in [1u32, 7, 8, 13, 64] {
            let word = sliced.generate(n)[0];
            stream.extend((0..n).rev().map(|i| (word >> i) & 1));
        }
        let reference = scalar_words(&lanes[0], 1, 64)[0]
            .to_be_bytes()
            .iter()
            .flat_map(|byte| (0..8).rev().map(move |i| u64::from((byte >> i) & 1)))
            .take(stream.len())
            .collect::<Vec<u64>>();
        // 1 + 7 + 8 + 13 + 64 = 93 cycles; compare the first 64.
        assert_eq!(stream[..64], reference[..64]);
    }

    #[test]
    fn store_lane_round_trips_through_scalar_state() {
        let lanes: Vec<Lane> = (0..3).map(|i| synthetic_lane(40 + i, 12, true)).collect();
        let mut sliced = SlicedKernel::new(&lanes).unwrap();
        for _ in 0..5 {
            sliced.generate(64);
        }
        // Extract lane 1 back to scalar and continue there; the scalar
        // continuation must match the kernel's continuation.
        let mut beats = lanes[1].beats.clone();
        sliced.store_lane(1, &mut beats);
        let resumed = Lane::new(
            beats,
            lanes[1].p_rand,
            lanes[1].bias,
            lanes[1].feedback.clone(),
            sliced.lane_rng_state(1),
        );
        let scalar_next = scalar_words(&resumed, 4, 64);
        let mut sliced_next = Vec::new();
        for _ in 0..4 {
            sliced_next.push(sliced.generate(64)[1]);
        }
        assert_eq!(sliced_next, scalar_next);
    }

    #[test]
    fn load_lane_resynchronises_one_lane_only() {
        let lanes: Vec<Lane> = (0..4).map(|i| synthetic_lane(70 + i, 12, true)).collect();
        let mut sliced = SlicedKernel::new(&lanes).unwrap();
        for _ in 0..3 {
            sliced.generate(64);
        }
        // Rewind lane 2 to its original snapshot; other lanes continue.
        sliced.load_lane(2, &lanes[2]);
        let words = sliced.generate(64).to_vec();
        assert_eq!(words[2], scalar_words(&lanes[2], 1, 64)[0]);
        assert_eq!(words[0], scalar_words(&lanes[0], 4, 64)[3]);
    }

    #[test]
    fn lane_count_is_validated() {
        assert_eq!(
            SlicedKernel::new(&[]).unwrap_err(),
            SliceError::LaneCount { got: 0 }
        );
        let too_many: Vec<Lane> = (0..65).map(|i| synthetic_lane(i, 2, false)).collect();
        assert_eq!(
            SlicedKernel::new(&too_many).unwrap_err(),
            SliceError::LaneCount { got: 65 }
        );
    }

    #[test]
    fn structural_invariants_are_typed_errors() {
        let oversized = synthetic_lane(1, MAX_BEATS + 1, false);
        assert_eq!(
            SlicedKernel::new(&[oversized]).unwrap_err(),
            SliceError::TooManyBeats {
                lane: 0,
                got: MAX_BEATS + 1
            }
        );
        let mismatched = Lane::new(
            bank(2, 4),
            0.5,
            0.0,
            Some((0.3, vec![0.1; 3])),
            NoiseRng::seed_from_u64(2).state(),
        );
        assert_eq!(
            SlicedKernel::new(&[synthetic_lane(3, 2, false), mismatched]).unwrap_err(),
            SliceError::MultiplierCount {
                lane: 1,
                expected: 4,
                got: 3
            }
        );
        let negative = Lane::new(
            bank(2, 2),
            0.5,
            0.0,
            Some((0.3, vec![0.5, -0.25])),
            NoiseRng::seed_from_u64(2).state(),
        );
        assert_eq!(
            SlicedKernel::new(&[negative]).unwrap_err(),
            SliceError::InvalidFeedback { lane: 0 }
        );
    }

    #[test]
    fn mantissa_conversion_is_exact() {
        // The two-constant reconstruction must equal `as f64` on the
        // full 53-bit mantissa domain (edges and random interior).
        let edges = [
            0u64,
            1,
            (1 << 32) - 1,
            1 << 32,
            (1 << 53) - 1,
            (1 << 52) + 12345,
        ];
        for &x in &edges {
            assert_eq!(
                mantissa_to_unit(x),
                x as f64 * (1.0 / (1u64 << 53) as f64),
                "x = {x}"
            );
        }
        let mut rng = NoiseRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.state()[0] >> 11;
            rng.uniform();
            assert_eq!(
                mantissa_to_unit(x),
                x as f64 * (1.0 / (1u64 << 53) as f64),
                "x = {x}"
            );
        }
    }

    #[test]
    fn forced_portable_backend_matches_dispatch() {
        // Same lanes, both sweep compilations, identical output. (On
        // non-AVX2 hosts both kernels dispatch portable and the test
        // degenerates to determinism.)
        let lanes: Vec<Lane> = (0..5).map(|i| synthetic_lane(900 + i, 12, true)).collect();
        let mut auto = SlicedKernel::new(&lanes).unwrap();
        let mut portable = SlicedKernel::new(&lanes).unwrap();
        portable.backend = Backend::Portable;
        for round in 0..16 {
            assert_eq!(
                auto.generate(64).to_vec(),
                portable.generate(64).to_vec(),
                "round {round} ({} vs portable)",
                auto.backend_name()
            );
        }
    }

    #[test]
    fn bank_interleaved_stream_deinterleaves_to_scalar_instances() {
        let instances: Vec<DhTrng> = (0..3)
            .map(|i| DhTrng::builder().seed(60 + i).build())
            .collect();
        let mut bank = SlicedDhTrng::new(instances).unwrap();
        let mut interleaved = vec![0u8; 3 * 8 * 10];
        bank.fill_bytes(&mut interleaved);
        for lane in 0..3 {
            let mut scalar = DhTrng::builder().seed(60 + lane as u64).build();
            let mut expect = vec![0u8; 80];
            scalar.fill_bytes(&mut expect);
            let got: Vec<u8> = interleaved
                .chunks(8)
                .skip(lane)
                .step_by(3)
                .flatten()
                .copied()
                .collect();
            assert_eq!(got, expect, "lane {lane}");
        }
    }

    #[test]
    fn bank_next_bit_walks_the_same_stream_as_fill_bytes() {
        let make = || {
            SlicedDhTrng::new(vec![
                DhTrng::builder().seed(7).build(),
                DhTrng::builder().seed(8).build(),
            ])
            .unwrap()
        };
        let mut by_bytes = make();
        let mut expect = vec![0u8; 64];
        by_bytes.fill_bytes(&mut expect);
        let mut by_bits = make();
        let bits: Vec<bool> = (0..512).map(|_| by_bits.next_bit()).collect();
        let expect_bits: Vec<bool> = expect
            .iter()
            .flat_map(|byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
            .collect();
        assert_eq!(bits, expect_bits);
        // Unaligned handoff: 3 bits, then bytes, still the one stream.
        let mut mixed = make();
        let head: Vec<bool> = (0..3).map(|_| mixed.next_bit()).collect();
        assert_eq!(head, expect_bits[..3]);
        let mut rest = vec![0u8; 8];
        mixed.fill_bytes(&mut rest);
        let rest_bits: Vec<bool> = rest
            .iter()
            .flat_map(|byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
            .collect();
        assert_eq!(rest_bits, expect_bits[3..67]);
    }

    #[test]
    fn fill_lane_chunks_matches_scalar_fill_bytes() {
        let seeds = [11u64, 22, 33];
        let instances: Vec<DhTrng> = seeds
            .iter()
            .map(|&s| DhTrng::builder().seed(s).build())
            .collect();
        let mut bank = SlicedDhTrng::new(instances).unwrap();
        // 61 bytes: exercises the 8-cycle tail path too.
        let mut chunks: Vec<Option<Vec<u8>>> = (0..3).map(|_| Some(vec![0u8; 61])).collect();
        bank.fill_lane_chunks(&mut chunks);
        let mut second: Vec<Option<Vec<u8>>> = vec![Some(vec![0u8; 61]), None, Some(vec![0u8; 61])];
        bank.fill_lane_chunks(&mut second);
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut scalar = DhTrng::builder().seed(seed).build();
            let mut expect = vec![0u8; 61];
            scalar.fill_bytes(&mut expect);
            assert_eq!(chunks[lane].as_deref(), Some(&expect[..]), "lane {lane}");
            scalar.fill_bytes(&mut expect);
            if let Some(chunk) = &second[lane] {
                // A lane skipped in between (None) must not disturb the
                // others: chunk 2 of each present lane is chunk 2 of
                // its scalar twin.
                assert_eq!(chunk[..], expect[..], "lane {lane}, chunk 2");
            }
        }
    }

    #[test]
    fn restart_and_refill_matches_a_restarted_scalar_instance() {
        let mut bank = SlicedDhTrng::new(vec![
            DhTrng::builder().seed(5).build(),
            DhTrng::builder().seed(6).build(),
        ])
        .unwrap();
        let mut chunks: Vec<Option<Vec<u8>>> = (0..2).map(|_| Some(vec![0u8; 64])).collect();
        bank.fill_lane_chunks(&mut chunks);
        // Power-cycle lane 0 and regenerate; lane 1 continues.
        let mut regenerated = vec![0u8; 64];
        bank.restart_lane_and_refill(0, &mut regenerated);
        assert_eq!(bank.lane_restarts(0), 1);
        bank.fill_lane_chunks(&mut chunks);

        let mut scalar0 = DhTrng::builder().seed(5).build();
        let mut expect = vec![0u8; 64];
        scalar0.fill_bytes(&mut expect);
        scalar0.restart();
        scalar0.fill_bytes(&mut expect);
        assert_eq!(regenerated, expect, "restarted chunk");
        scalar0.fill_bytes(&mut expect);
        assert_eq!(chunks[0].as_deref(), Some(&expect[..]), "post-restart");

        let mut scalar1 = DhTrng::builder().seed(6).build();
        scalar1.fill_bytes(&mut expect);
        scalar1.fill_bytes(&mut expect);
        assert_eq!(
            chunks[1].as_deref(),
            Some(&expect[..]),
            "lane 1 undisturbed by lane 0's restart"
        );
    }
}
