//! The paper's stochastic model: Eq. 3 (XOR expectation), Eq. 4 (n-order
//! XOR convergence), Eq. 5 (randomness coverage), the ring-coverage
//! physics that feeds Eq. 5, and the silicon calibrations the behavioural
//! generator uses.
//!
//! # Calibration
//!
//! Two kinds of numbers appear here:
//!
//! * **derived** quantities — per-sample jitter-window and metastability
//!   coverage computed from the models in [`dhtrng_noise`];
//! * **calibrated** quantities — the residual bias of the deterministic
//!   (beat) component, fitted against the paper's silicon measurements
//!   (Tables 1, 2, 4), because absolute bias on real FPGAs is dominated
//!   by threshold/duty mismatch that no first-principles software model
//!   can predict. Each calibrated constant cites the table it comes from.

use dhtrng_noise::jitter::JitterModel;
use dhtrng_noise::metastability::{MetastabilityModel, SubthresholdLock};

/// Eq. 3: expectation of the XOR of two independent bits with means
/// `mu1`, `mu2`: `E = 1/2 - 2 (mu1 - 1/2)(mu2 - 1/2)`.
pub fn eq3_xor_expectation(mu1: f64, mu2: f64) -> f64 {
    0.5 - 2.0 * (mu1 - 0.5) * (mu2 - 0.5)
}

/// Eq. 4: expectation of the n-order XOR of independent unit outputs:
/// `E = 1/2 (1 + ((1 - 2 mu1)(1 - 2 mu2))^n / 2)`... in the paper's
/// exact form `E = 1/2 [1 + ((1-2mu1)(1-2mu2))^n / 2]`; the term inside
/// converges geometrically to 0, so the expectation converges to 1/2.
pub fn eq4_xor_expectation_n(mu1: f64, mu2: f64, n: u32) -> f64 {
    0.5 * (1.0 + ((1.0 - 2.0 * mu1) * (1.0 - 2.0 * mu2)).powi(n as i32) / 2.0)
}

/// Per-ring terms of the paper's Eq. 5.
///
/// For ring `i`: `a`/`w`/`t_ro` describe the jitter window (probability,
/// width, oscillation period) and `tau`/`eps`/`f` the dynamic-switching
/// metastability (subthreshold lock probability, transition-edge width,
/// oscillation frequency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingCoverage {
    /// Jitter-window hit probability factor `a`.
    pub a: f64,
    /// Jitter window width `w_i` (seconds).
    pub w: f64,
    /// Ring oscillation period `T_ro_i` (seconds).
    pub t_ro: f64,
    /// Subthreshold-lock probability `tau` (0 for plain jitter rings).
    pub tau: f64,
    /// Transition-edge width `eps` (seconds).
    pub eps: f64,
    /// Oscillation frequency `f_i` (Hz).
    pub f: f64,
}

impl RingCoverage {
    /// This ring's per-sample randomness probability: the bracketed term
    /// of Eq. 5 complemented, `1 - (1 - 2 a w / T_ro)(1 - (tau + 2 eps f))`,
    /// clamped to `[0, 1]`.
    pub fn per_ring(&self) -> f64 {
        let jitter_term = (1.0 - 2.0 * self.a * self.w / self.t_ro).clamp(0.0, 1.0);
        let meta_term = (1.0 - (self.tau + 2.0 * self.eps * self.f)).clamp(0.0, 1.0);
        1.0 - jitter_term * meta_term
    }
}

/// Eq. 5: randomness coverage of `n` XORed rings:
/// `P_rand = 1 - prod_i (1 - 2 a w_i / T_ro_i)(1 - (tau + 2 eps f_i))`.
pub fn eq5_randomness_coverage(rings: &[RingCoverage]) -> f64 {
    let survive: f64 = rings
        .iter()
        .map(|r| (1.0 - r.per_ring()).clamp(0.0, 1.0))
        .product();
    1.0 - survive
}

/// The kind of ring a tap samples, which decides which Eq. 5 terms apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingKind {
    /// RO1: plain jitter-extraction ring (Fig. 3a upper).
    JitterRing,
    /// RO2: MUX-switched hybrid ring (Fig. 3a lower) — jitter plus
    /// dynamic-switching metastability.
    HybridRing,
    /// Central coupling XOR ring (Fig. 4a) — chaotic mode switching
    /// boosts the effective coverage.
    CentralRing,
}

/// Physics inputs for one ring's per-sample coverage.
#[derive(Debug, Clone)]
pub struct RingPhysics {
    /// Ring kind.
    pub kind: RingKind,
    /// Ring oscillation period in seconds.
    pub period: f64,
    /// Jitter model of the ring.
    pub jitter: JitterModel,
    /// Sampler metastability model.
    pub meta: MetastabilityModel,
    /// Holding-loop lock model (hybrid rings only).
    pub lock: SubthresholdLock,
}

impl RingPhysics {
    /// Builds the Eq. 5 terms for a sampling interval of `t_sample`
    /// seconds.
    pub fn coverage(&self, t_sample: f64) -> RingCoverage {
        // Jitter window: +-1 sigma of jitter accumulated over the
        // sampling interval, two edges per period (a = 2 folds the
        // two-edge factor into Eq. 5's `a`).
        let w = 2.0 * self.jitter.accumulated_sigma(t_sample);
        // Metastable capture: the sampler resolves randomly when the tap
        // transitions within +-2 sigma of the edge.
        let meta_window = 4.0 * self.meta.sigma();
        let (tau, chaos_boost) = match self.kind {
            RingKind::JitterRing => (0.0, 1.0),
            // Hybrid ring: the MUX locks a subthreshold level with
            // probability tau when the switch catches a transition; the
            // switch happens roughly every half period of RO1, and the
            // sampler sees the locked node about half the time.
            RingKind::HybridRing => (0.5 * self.lock.lock_probability(), 1.0),
            // Central XOR rings see the jitter of both edge rings plus
            // chaotic logic-mode switching (paper §3.2): their effective
            // window doubles.
            RingKind::CentralRing => (0.0, 2.0),
        };
        RingCoverage {
            a: 2.0 * chaos_boost,
            w,
            t_ro: self.period,
            tau,
            eps: meta_window,
            f: 1.0 / self.period,
        }
    }
}

/// Group calibration for an XOR-of-n-sources generator: the residual
/// bias of the deterministic component is `b0 * rho^n` (fitted against
/// the paper's silicon tables — geometric decay matches the measured
/// slow improvement, which pure independent piling-up would overshoot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCalibration {
    /// Bias prefactor.
    pub b0: f64,
    /// Geometric decay per additional XORed source.
    pub rho: f64,
    /// Per-source per-sample randomness coverage at the 100 MHz
    /// characterisation clock.
    pub coverage: f64,
}

impl GroupCalibration {
    /// Dynamic hybrid entropy units (fitted to the paper's Table 2
    /// "Entropy units" row: h = 0.9765 at 9 XOR up to 0.9912 at 18).
    pub fn hybrid_units() -> Self {
        Self {
            b0: 0.0268,
            rho: 0.860,
            coverage: 0.45,
        }
    }

    /// 9-stage ring oscillators (fitted to Table 2's "9-stage ROs" row:
    /// h = 0.9705 at 9 XOR up to 0.9891 at 18).
    pub fn nine_stage_ros() -> Self {
        Self {
            b0: 0.0324,
            rho: 0.867,
            coverage: 0.35,
        }
    }

    /// Residual deterministic bias for an XOR of `n` sources.
    pub fn bias(&self, n: u32) -> f64 {
        self.b0 * self.rho.powi(n as i32)
    }

    /// Eq. 5 coverage for an XOR of `n` sources.
    pub fn p_rand(&self, n: u32) -> f64 {
        1.0 - (1.0 - self.coverage).powi(n as i32)
    }
}

/// Residual bias of a 4-way XOR of `stages`-stage ring oscillators at
/// the 100 MHz characterisation clock — calibrated against the paper's
/// Table 1 min-entropy sweep (stage 2..=13, peak at 9 stages).
///
/// The paper presents Table 1 as an empirical motivation; the
/// non-monotone order response on silicon mixes per-stage mismatch
/// (improves with averaging over more stages) against shrinking relative
/// jitter coverage (worsens for slow rings), and the constants here are
/// fitted to the published row. See `DESIGN.md` §4.
pub fn table1_ro_bias(stages: u32) -> f64 {
    // Bias values derived from Table 1's min-entropies after removing the
    // 1 Mbit MCV confidence floor (~0.00129).
    const BIAS: [f64; 12] = [
        0.00788, 0.00802, 0.00722, 0.00652, 0.00628, 0.00461, 0.00360, 0.00322, 0.00423, 0.00440,
        0.00611, 0.00795,
    ];
    assert!(
        (2..=13).contains(&stages),
        "Table 1 covers ring orders 2..=13, got {stages}"
    );
    BIAS[(stages - 2) as usize]
}

/// Per-sample randomness coverage of a 4-way XOR of `stages`-stage ROs
/// at 100 MHz: derived from the white-noise physics (sigma grows as
/// sqrt(N), period as N, so per-ring coverage falls as 1/sqrt(N)).
pub fn table1_ro_coverage(stages: u32) -> f64 {
    let per_ring = (0.9 / f64::from(stages).sqrt()).min(0.95);
    1.0 - (1.0 - per_ring).powi(4)
}

/// Incommensurate beat oscillator: the deterministic fallback value of a
/// sampled free-running ring (the sampling clock and ring frequency are
/// never harmonically related, so the sampled square wave walks through
/// phases quasi-uniformly).
#[derive(Debug, Clone)]
pub struct BeatOscillator {
    phase: f64,
    increment: f64,
    duty: f64,
}

impl BeatOscillator {
    /// Creates a beat with the given per-sample phase increment (the
    /// fractional part of `T_clk / T_ring`) and duty cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < duty < 1`.
    pub fn new(initial_phase: f64, increment: f64, duty: f64) -> Self {
        assert!(duty > 0.0 && duty < 1.0, "duty must be in (0,1)");
        Self {
            phase: initial_phase.rem_euclid(1.0),
            increment: increment.rem_euclid(1.0),
            duty,
        }
    }

    /// Advances one sampling clock and returns the sampled level.
    pub fn step(&mut self) -> bool {
        self.phase = (self.phase + self.increment).rem_euclid(1.0);
        self.phase < self.duty
    }

    /// Kicks the phase by `amount` (feedback decorrelation).
    pub fn kick(&mut self, amount: f64) {
        self.phase = (self.phase + amount).rem_euclid(1.0);
    }

    /// Current phase in `[0, 1)`.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Per-sample phase increment in `[0, 1)`.
    pub fn increment(&self) -> f64 {
        self.increment
    }

    /// Duty cycle in `(0, 1)`.
    pub fn duty(&self) -> f64 {
        self.duty
    }

    /// Restores a phase previously read via [`phase`](Self::phase) —
    /// batched kernels advance phases in working arrays and write the
    /// final values back through this.
    pub fn set_phase(&mut self, phase: f64) {
        self.phase = phase.rem_euclid(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_noise::NoiseRng;

    #[test]
    fn eq3_matches_monte_carlo() {
        let mut rng = NoiseRng::seed_from_u64(1);
        let (mu1, mu2) = (0.7, 0.4);
        let n = 400_000;
        let ones = (0..n)
            .filter(|_| rng.bernoulli(mu1) ^ rng.bernoulli(mu2))
            .count();
        let measured = ones as f64 / n as f64;
        let predicted = eq3_xor_expectation(mu1, mu2);
        assert!(
            (measured - predicted).abs() < 0.005,
            "{measured} vs {predicted}"
        );
    }

    #[test]
    fn eq3_fair_inputs_give_fair_output() {
        assert!((eq3_xor_expectation(0.5, 0.9) - 0.5).abs() < 1e-12);
        assert!((eq3_xor_expectation(0.5, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq4_converges_to_half() {
        let e1 = eq4_xor_expectation_n(0.7, 0.6, 1);
        let e4 = eq4_xor_expectation_n(0.7, 0.6, 4);
        let e16 = eq4_xor_expectation_n(0.7, 0.6, 16);
        assert!((e1 - 0.5).abs() > (e4 - 0.5).abs());
        assert!((e4 - 0.5).abs() > (e16 - 0.5).abs());
        assert!((e16 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn eq5_more_rings_more_coverage() {
        let ring = RingCoverage {
            a: 2.0,
            w: 30.0e-12,
            t_ro: 3.4e-9,
            tau: 0.2,
            eps: 100.0e-12,
            f: 290.0e6,
        };
        let few = eq5_randomness_coverage(&[ring; 3]);
        let many = eq5_randomness_coverage(&vec![ring; 12]);
        assert!(many > few);
        assert!(many <= 1.0 && few >= 0.0);
    }

    #[test]
    fn eq5_empty_is_zero() {
        assert_eq!(eq5_randomness_coverage(&[]), 0.0);
    }

    #[test]
    fn ring_physics_hybrid_beats_plain_jitter() {
        let period = 3.4e-9;
        let mk = |kind| RingPhysics {
            kind,
            period,
            jitter: JitterModel::fpga_ring_oscillator(period),
            meta: MetastabilityModel::fpga_dff(),
            lock: SubthresholdLock::dh_trng_nominal(),
        };
        let t_sample = 1.0 / 100.0e6;
        let plain = mk(RingKind::JitterRing).coverage(t_sample).per_ring();
        let hybrid = mk(RingKind::HybridRing).coverage(t_sample).per_ring();
        let central = mk(RingKind::CentralRing).coverage(t_sample).per_ring();
        assert!(
            hybrid > plain,
            "dynamic switching must add coverage: {hybrid} vs {plain}"
        );
        assert!(central > plain, "chaotic central rings boost coverage");
        for c in [plain, hybrid, central] {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn faster_sampling_reduces_jitter_coverage() {
        let period = 3.4e-9;
        let physics = RingPhysics {
            kind: RingKind::JitterRing,
            period,
            jitter: JitterModel::fpga_ring_oscillator(period),
            meta: MetastabilityModel::fpga_dff(),
            lock: SubthresholdLock::dh_trng_nominal(),
        };
        let slow = physics.coverage(1.0 / 100.0e6).per_ring();
        let fast = physics.coverage(1.0 / 620.0e6).per_ring();
        assert!(
            fast < slow,
            "less accumulation per sample at 620 MHz: {fast} vs {slow}"
        );
    }

    #[test]
    fn group_calibration_matches_table2_anchors() {
        let dh = GroupCalibration::hybrid_units();
        let ro = GroupCalibration::nine_stage_ros();
        // Table 2 anchor points (bias after removing the MCV floor).
        assert!((dh.bias(9) - 0.00689).abs() < 0.0005, "{}", dh.bias(9));
        assert!((dh.bias(18) - 0.00177).abs() < 0.0004, "{}", dh.bias(18));
        assert!((ro.bias(9) - 0.0090).abs() < 0.0006, "{}", ro.bias(9));
        // The hybrid unit is strictly better at every XOR order.
        for n in 9..=18 {
            assert!(dh.bias(n) < ro.bias(n), "n = {n}");
        }
        // Coverage grows with n.
        assert!(dh.p_rand(18) > dh.p_rand(9));
    }

    #[test]
    fn table1_calibration_peaks_at_nine_stages() {
        let best =
            (2..=13).min_by(|&a, &b| table1_ro_bias(a).partial_cmp(&table1_ro_bias(b)).unwrap());
        assert_eq!(best, Some(9));
        // Coverage declines with order (white-noise physics).
        assert!(table1_ro_coverage(2) > table1_ro_coverage(13));
    }

    #[test]
    fn beat_oscillator_is_balanced_over_time() {
        let mut beat = BeatOscillator::new(0.123, 0.381_966_01, 0.5); // ~golden ratio
        let n = 100_000;
        let ones = (0..n).filter(|_| beat.step()).count();
        let frac = ones as f64 / n as f64;
        assert!(
            (frac - 0.5).abs() < 0.01,
            "duty-0.5 beat must be balanced: {frac}"
        );
    }

    #[test]
    fn beat_duty_skews_the_mean() {
        let mut beat = BeatOscillator::new(0.0, 0.381_966_01, 0.6);
        let n = 100_000;
        let ones = (0..n).filter(|_| beat.step()).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn beat_kick_changes_trajectory() {
        let mut a = BeatOscillator::new(0.1, 0.3, 0.5);
        let mut b = a.clone();
        b.kick(0.25);
        let seq_a: Vec<bool> = (0..64).map(|_| a.step()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.step()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    #[should_panic(expected = "Table 1 covers ring orders")]
    fn table1_out_of_range_panics() {
        let _ = table1_ro_bias(1);
    }
}
