//! DH-TRNG: the dynamic hybrid true random number generator of
//! Zhang/Zhong/Zhang (DAC 2024), as a behavioural reproduction.
//!
//! The crate implements the paper's contribution at two levels:
//!
//! * a **gate-level netlist** ([`architecture`]) — the exact circuit of
//!   Figures 3–5 (hybrid entropy units, nested coupling XOR rings,
//!   feedback line, 12-tap sampling array) emitted for the event-driven
//!   simulator in [`dhtrng_sim`], with the paper's resource footprint of
//!   23 LUTs + 4 MUXes + 14 DFFs;
//! * a **fast calibrated stochastic model** ([`trng::DhTrng`]) — a
//!   cycle-accurate behavioural generator whose per-sample randomness
//!   follows the paper's Eq. 5 coverage structure (jitter-window hits,
//!   subthreshold locks, metastable captures) and whose residual bias is
//!   calibrated against the paper's silicon measurements; this is what
//!   produces the megabit bitstreams the evaluation batteries consume.
//!
//! Around the generator sit the SP 800-90C output stages: continuous
//! [`health`] tests, the composable [`conditioning`] layer, and the
//! [`drbg`] output stage — see `DESIGN.md` §6 for how the boxes map
//! onto the spec's source → health → conditioner → DRBG chain. The
//! [`kernel`] module supplies the stage-graph vocabulary
//! ([`BlockSource`] / [`Stage`] over borrowed [`BitBlock`]s) that lets
//! the streaming engine drive those stages over recycled buffers with
//! no intermediate re-buffering (`DESIGN.md` §7).
//!
//! See `DESIGN.md` at the workspace root for the calibration notes and
//! the experiment index.
//!
//! # Example
//!
//! ```
//! use dhtrng_core::{DhTrng, Trng};
//!
//! let mut trng = DhTrng::builder().seed(42).build();
//! let mut key = [0u8; 32];
//! trng.fill_bytes(&mut key);
//! assert_ne!(key, [0u8; 32]); // all-zero key is (astronomically) unlikely
//! // One bit per sampling-clock cycle, ~620 Mbps on the default Artix-7.
//! assert!(trng.throughput_mbps() > 600.0);
//! ```

#![deny(missing_docs)]
// `deny`, not `forbid`: the bit-sliced kernel's AVX2 dispatch needs two
// narrowly-scoped `#[allow(unsafe_code)]` items (a `target_feature`
// function and its feature-checked call site in `slice`); everything
// else stays unsafe-free and any new unsafe is still a hard error.
#![deny(unsafe_code)]

pub mod architecture;
pub mod array;
pub mod batch;
pub mod conditioning;
pub mod drbg;
pub mod health;
pub mod kernel;
pub mod model;
pub mod postproc;
pub mod slice;
pub mod telemetry;
pub mod trng;

pub use architecture::{dh_trng_netlist, entropy_unit_netlist, EntropyUnitPorts, NetlistPorts};
pub use array::DhTrngArray;
pub use batch::{BlockKernel, KernelError, MAX_BEATS};
pub use conditioning::{Conditioned, Conditioner, CrcWhitener, VonNeumannConditioner, XorFold};
pub use drbg::{Drbg, DrbgConfig, HashDrbg};
pub use health::{HealthMonitor, HealthStatus};
pub use kernel::{BitBlock, BlockSource, ConditionerStage, Stage};
pub use model::{
    eq3_xor_expectation, eq4_xor_expectation_n, eq5_randomness_coverage, RingCoverage,
};
pub use postproc::{LfsrWhitener, VonNeumann, XorDecimator};
pub use slice::{Lane, SliceError, SlicedDhTrng, SlicedKernel, MAX_LANES};
pub use telemetry::{
    MetricsHandle, NoopRecorder, Recorder, ShardSnapshot, Snapshot, StageEvent, TraceEvent, Tracer,
};
pub use trng::{DhTrng, DhTrngBuilder, DhTrngConfig, HybridUnitGroup, Trng};
