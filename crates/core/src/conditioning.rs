//! Composable conditioning components — the SP 800-90C "conditioner"
//! box between the raw entropy source and the DRBG.
//!
//! The paper's headline is that DH-TRNG passes the batteries *raw*; a
//! production entropy service still deploys a conditioning stage, both
//! as defence in depth (a degraded source keeps full-entropy output at
//! a reduced rate) and because SP 800-90C requires one between the
//! noise source and the DRBG. This module supplies that stage as small
//! composable state machines:
//!
//! * [`Conditioner`] — the trait: a bit-serial state machine that
//!   consumes raw bits and occasionally emits conditioned bits, with a
//!   declared expected compression ratio (raw bits in per conditioned
//!   bit out);
//! * [`VonNeumannConditioner`] — exact debiasing of an independent
//!   source at an expected 4x+ rate cost;
//! * [`XorFold`] — XOR of `k` raw bits per output bit (piling-up
//!   lemma: residual bias `2^(k-1) * e^k` for input bias `e`);
//! * [`CrcWhitener`] — a CRC-16/CCITT register fed bit-serially with a
//!   **configurable compression ratio**: every `ratio` raw bits, the
//!   register's low bit is emitted. `ratio = 1` whitens at full rate;
//!   `ratio >= 2` compresses, folding `16 + ratio` raw bits of history
//!   into every output bit;
//! * [`LfsrConditioner`] — the legacy rate-preserving 16-bit Fibonacci
//!   LFSR whitener (behind [`LfsrWhitener`](crate::postproc::LfsrWhitener));
//! * [`Chain`] — sequential composition via [`Conditioner::then`];
//! * [`Conditioned`] — the adaptor that mounts any [`Conditioner`] on
//!   any [`Trng`], pulling raw bits through the batched
//!   [`next_word`](Trng::next_word) fast path and keeping
//!   consumed/emitted throughput ledgers.
//!
//! The wrappers in [`postproc`](crate::postproc) are thin shells over
//! these primitives, so the throughput-cost demonstrations and the
//! production conditioning layer share one implementation. The
//! stream-level pipeline (`dhtrng-stream`) mounts the same machines on
//! the sharded merged stream.
//!
//! Conditioned output is a **pure function of the raw bit stream**: no
//! conditioner draws randomness of its own, so for a seeded source the
//! conditioned stream is as reproducible as the raw one, however the
//! raw bits are batched.
//!
//! # Example
//!
//! ```
//! use dhtrng_core::conditioning::{Conditioned, Conditioner, CrcWhitener};
//! use dhtrng_core::{DhTrng, Trng};
//!
//! // 2:1 CRC compression over a DH-TRNG instance.
//! let raw = DhTrng::builder().seed(7).build();
//! let mut conditioned = Conditioned::new(raw, CrcWhitener::new(2));
//! let mut key = [0u8; 32];
//! conditioned.fill_bytes(&mut key);
//! assert_eq!(conditioned.expected_ratio(), 2.0);
//! assert_eq!(conditioned.consumed(), 2 * conditioned.emitted());
//! ```

use crate::trng::Trng;

/// A bit-serial conditioning state machine.
///
/// Raw bits go in one at a time through [`push`](Self::push); zero or
/// one conditioned bits come out per push. Implementations are pure
/// state machines — deterministic in the raw stream, no internal
/// randomness — so conditioning never *adds* entropy, it only
/// concentrates what the source supplies.
pub trait Conditioner {
    /// Feeds one raw bit; returns a conditioned output bit when the
    /// machine emits on this push.
    fn push(&mut self, raw: bool) -> Option<bool>;

    /// Expected raw bits consumed per conditioned bit emitted
    /// (`>= 1.0`). Exact for fixed-rate conditioners; the long-run
    /// expectation on an unbiased source for variable-rate ones
    /// (Von Neumann).
    fn expected_ratio(&self) -> f64;

    /// Clears the machine back to its initial state (discarding any
    /// partially accumulated input).
    fn reset(&mut self);

    /// Chains another conditioner after this one: raw bits feed `self`,
    /// its output feeds `next`, and `next`'s output is the chain's.
    ///
    /// ```
    /// use dhtrng_core::conditioning::{Conditioner, CrcWhitener, XorFold};
    ///
    /// // XOR-fold by 2, then whiten: 2x compression overall.
    /// let chain = XorFold::new(2).then(CrcWhitener::new(1));
    /// assert_eq!(chain.expected_ratio(), 2.0);
    /// ```
    fn then<B: Conditioner>(self, next: B) -> Chain<Self, B>
    where
        Self: Sized,
    {
        Chain {
            first: self,
            second: next,
        }
    }
}

/// Boxed conditioners condition like their contents, so heterogeneous
/// stacks (e.g. the pipeline's runtime-selected machine) mount anywhere
/// a generic [`Conditioner`] is expected — notably behind
/// [`ConditionerStage`](crate::kernel::ConditionerStage).
impl<C: Conditioner + ?Sized> Conditioner for Box<C> {
    fn push(&mut self, raw: bool) -> Option<bool> {
        (**self).push(raw)
    }

    fn expected_ratio(&self) -> f64 {
        (**self).expected_ratio()
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Von Neumann debiaser: consumes raw bits in pairs; an unequal pair
/// emits its second bit, an equal pair is discarded.
///
/// Removes *all* bias from an independent source; costs `2 / (2pq)` raw
/// bits per output bit (4.0 when unbiased, worse when biased).
#[derive(Debug, Clone, Default)]
pub struct VonNeumannConditioner {
    held: Option<bool>,
}

impl VonNeumannConditioner {
    /// A fresh debiaser (no bit held).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Conditioner for VonNeumannConditioner {
    fn push(&mut self, raw: bool) -> Option<bool> {
        match self.held.take() {
            None => {
                self.held = Some(raw);
                None
            }
            Some(first) => (first != raw).then_some(raw),
        }
    }

    fn expected_ratio(&self) -> f64 {
        4.0
    }

    fn reset(&mut self) {
        self.held = None;
    }
}

/// XOR decimator: each output bit is the XOR of `factor` raw bits.
///
/// By the piling-up lemma (paper Eq. 4), input bias `e` becomes output
/// bias `2^(factor - 1) * e^factor` at a linear `factor : 1` rate cost.
#[derive(Debug, Clone)]
pub struct XorFold {
    factor: u32,
    acc: bool,
    fed: u32,
}

impl XorFold {
    /// A fold over `factor` raw bits per output bit.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: u32) -> Self {
        assert!(factor > 0, "decimation factor must be positive");
        Self {
            factor,
            acc: false,
            fed: 0,
        }
    }

    /// The fold factor (= raw bits per output bit).
    pub fn factor(&self) -> u32 {
        self.factor
    }
}

impl Conditioner for XorFold {
    fn push(&mut self, raw: bool) -> Option<bool> {
        self.acc ^= raw;
        self.fed += 1;
        if self.fed == self.factor {
            let out = self.acc;
            self.acc = false;
            self.fed = 0;
            Some(out)
        } else {
            None
        }
    }

    fn expected_ratio(&self) -> f64 {
        f64::from(self.factor)
    }

    fn reset(&mut self) {
        self.acc = false;
        self.fed = 0;
    }
}

/// CRC-16/CCITT polynomial (x^16 + x^12 + x^5 + 1).
const CRC_POLY: u16 = 0x1021;
/// CRC-16/CCITT initial register value.
const CRC_INIT: u16 = 0xFFFF;

/// CRC-based whitener with a configurable compression ratio.
///
/// Raw bits shift serially into a CRC-16/CCITT register; every `ratio`
/// raw bits the register's low bit is emitted. Each output bit
/// therefore mixes the full 16-bit register history plus the `ratio`
/// fresh bits — unlike a plain XOR fold, local raw structure is spread
/// across many output bits.
///
/// * `ratio = 1`: rate-preserving whitening (cosmetic — no entropy is
///   added, exactly like the classic LFSR whitener);
/// * `ratio >= 2`: a genuine conditioner, concentrating `ratio` raw
///   bits into each output bit.
#[derive(Debug, Clone)]
pub struct CrcWhitener {
    ratio: u32,
    crc: u16,
    fed: u32,
}

impl CrcWhitener {
    /// A whitener emitting one bit per `ratio` raw bits.
    ///
    /// # Panics
    ///
    /// Panics if `ratio == 0`.
    pub fn new(ratio: u32) -> Self {
        assert!(ratio > 0, "compression ratio must be positive");
        Self {
            ratio,
            crc: CRC_INIT,
            fed: 0,
        }
    }

    /// The compression ratio (= raw bits per output bit).
    pub fn ratio(&self) -> u32 {
        self.ratio
    }
}

impl Conditioner for CrcWhitener {
    fn push(&mut self, raw: bool) -> Option<bool> {
        // Bit-serial CRC step: feed the raw bit at the register's top.
        let fed_back = (self.crc >> 15) ^ u16::from(raw);
        self.crc <<= 1;
        if fed_back == 1 {
            self.crc ^= CRC_POLY;
        }
        self.fed += 1;
        if self.fed == self.ratio {
            self.fed = 0;
            // Emit the register's low bit. NOT the register parity: the
            // parity of a CRC register is a degenerate linear output —
            // each push flips it iff the raw bit is 1, so a
            // parity-emitting "whitener" collapses to a running XOR
            // accumulator and a stuck source yields constant output.
            // The low bit is a full mix of the register history.
            Some(self.crc & 1 == 1)
        } else {
            None
        }
    }

    fn expected_ratio(&self) -> f64 {
        f64::from(self.ratio)
    }

    fn reset(&mut self) {
        self.crc = CRC_INIT;
        self.fed = 0;
    }
}

/// The legacy 16-bit Fibonacci LFSR whitener (x^16 + x^14 + x^13 +
/// x^11 + 1), rate-preserving: the raw bit is injected into the
/// feedback and the register's low bit is emitted every push.
///
/// This is the exact machine behind
/// [`LfsrWhitener`](crate::postproc::LfsrWhitener); kept distinct from
/// [`CrcWhitener`] so the historical stream stays bit-for-bit stable.
#[derive(Debug, Clone)]
pub struct LfsrConditioner {
    state: u16,
}

impl LfsrConditioner {
    /// Non-zero initial register.
    const SEED: u16 = 0xACE1;

    /// A fresh whitener.
    pub fn new() -> Self {
        Self { state: Self::SEED }
    }
}

impl Default for LfsrConditioner {
    fn default() -> Self {
        Self::new()
    }
}

impl Conditioner for LfsrConditioner {
    fn push(&mut self, raw: bool) -> Option<bool> {
        let fb = (self.state ^ (self.state >> 2) ^ (self.state >> 3) ^ (self.state >> 5)) & 1;
        self.state = (self.state >> 1) | ((fb ^ u16::from(raw)) << 15);
        Some(self.state & 1 == 1)
    }

    fn expected_ratio(&self) -> f64 {
        1.0
    }

    fn reset(&mut self) {
        self.state = Self::SEED;
    }
}

/// Two conditioners in sequence (built by [`Conditioner::then`]): raw
/// bits feed the first; its emissions feed the second; the second's
/// emissions are the chain's output.
#[derive(Debug, Clone)]
pub struct Chain<A, B> {
    first: A,
    second: B,
}

impl<A: Conditioner, B: Conditioner> Conditioner for Chain<A, B> {
    fn push(&mut self, raw: bool) -> Option<bool> {
        self.first.push(raw).and_then(|mid| self.second.push(mid))
    }

    fn expected_ratio(&self) -> f64 {
        self.first.expected_ratio() * self.second.expected_ratio()
    }

    fn reset(&mut self) {
        self.first.reset();
        self.second.reset();
    }
}

/// A [`Trng`] whose output is another `Trng` run through a
/// [`Conditioner`] — the single-instance form of the pipeline's
/// conditioned tier.
///
/// Raw bits are pulled 64 at a time through the inner generator's
/// batched [`next_word`](Trng::next_word) fast path and fed through the
/// conditioner bit-serially; the conditioned stream is identical to a
/// per-bit pull (conditioning is a pure function of the raw stream),
/// just cheaper per raw bit.
///
/// The adaptor keeps a throughput ledger: [`consumed`](Self::consumed)
/// raw bits vs [`emitted`](Self::emitted) conditioned bits, with
/// [`measured_ratio`](Self::measured_ratio) as their quotient.
///
/// # Liveness
///
/// [`next_bit`](Trng::next_bit) pulls raw bits until the conditioner
/// emits; a conditioner that never emits on the given source spins
/// forever — the canonical case is [`VonNeumannConditioner`] over a
/// stuck source, which discards every (equal) pair. Run health tests
/// upstream of the conditioner, as the stream pipeline does: a source
/// degenerate enough to starve a conditioner is one the SP 800-90B
/// continuous tests retire first.
#[derive(Debug, Clone)]
pub struct Conditioned<T, C> {
    inner: T,
    conditioner: C,
    raw_word: u64,
    raw_left: u32,
    consumed: u64,
    emitted: u64,
}

impl<T: Trng, C: Conditioner> Conditioned<T, C> {
    /// Mounts `conditioner` on `inner`.
    pub fn new(inner: T, conditioner: C) -> Self {
        Self {
            inner,
            conditioner,
            raw_word: 0,
            raw_left: 0,
            consumed: 0,
            emitted: 0,
        }
    }

    /// Raw bits fed to the conditioner so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Conditioned bits emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Measured raw-bits-per-output-bit (infinite until the first
    /// emission).
    pub fn measured_ratio(&self) -> f64 {
        if self.emitted == 0 {
            f64::INFINITY
        } else {
            self.consumed as f64 / self.emitted as f64
        }
    }

    /// The conditioner's declared expected ratio.
    pub fn expected_ratio(&self) -> f64 {
        self.conditioner.expected_ratio()
    }

    /// The mounted conditioner.
    pub fn conditioner(&self) -> &C {
        &self.conditioner
    }

    /// Unwraps the raw source.
    ///
    /// The source may sit up to 63 bits past the last conditioned bit:
    /// raw bits are pulled in 64-bit words, and a partially drained
    /// word is dropped here.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Trng, C: Conditioner> Trng for Conditioned<T, C> {
    fn next_bit(&mut self) -> bool {
        loop {
            if self.raw_left == 0 {
                self.raw_word = self.inner.next_word();
                self.raw_left = 64;
            }
            self.raw_left -= 1;
            let raw = (self.raw_word >> self.raw_left) & 1 == 1;
            self.consumed += 1;
            if let Some(bit) = self.conditioner.push(raw) {
                self.emitted += 1;
                return bit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_noise::NoiseRng;

    /// A tunable biased source.
    struct Biased {
        rng: NoiseRng,
        p_one: f64,
    }

    impl Trng for Biased {
        fn next_bit(&mut self) -> bool {
            self.rng.bernoulli(self.p_one)
        }
    }

    fn biased(p: f64, seed: u64) -> Biased {
        Biased {
            rng: NoiseRng::seed_from_u64(seed),
            p_one: p,
        }
    }

    fn ones_fraction<T: Trng>(t: &mut T, n: usize) -> f64 {
        (0..n).filter(|_| t.next_bit()).count() as f64 / n as f64
    }

    /// Runs `bits` through a conditioner, collecting the emissions.
    fn run<C: Conditioner>(cond: &mut C, bits: impl IntoIterator<Item = bool>) -> Vec<bool> {
        bits.into_iter().filter_map(|b| cond.push(b)).collect()
    }

    #[test]
    fn von_neumann_machine_implements_the_pair_rule() {
        let mut vn = VonNeumannConditioner::new();
        // 00 -> nothing, 01 -> 1, 10 -> 0, 11 -> nothing.
        assert_eq!(
            run(
                &mut vn,
                [false, false, false, true, true, false, true, true]
            ),
            vec![true, false]
        );
    }

    #[test]
    fn xor_fold_emits_every_factor_bits() {
        let mut fold = XorFold::new(3);
        let out = run(&mut fold, [true, true, false, true, false, false]);
        assert_eq!(out, vec![false, true]);
        assert_eq!(fold.factor(), 3);
        // Factor 1 is the identity.
        let mut id = XorFold::new(1);
        let bits = [true, false, true, true];
        assert_eq!(run(&mut id, bits), bits.to_vec());
    }

    #[test]
    fn crc_whitener_respects_ratio_and_resets() {
        for ratio in [1u32, 2, 7, 64] {
            let mut crc = CrcWhitener::new(ratio);
            let n = 5 * ratio as usize + (ratio as usize / 2);
            let out = run(&mut crc, (0..n).map(|i| i % 3 == 0));
            assert_eq!(out.len(), n / ratio as usize, "ratio = {ratio}");
        }
        // reset() discards both the register and the partial count.
        let mut crc = CrcWhitener::new(4);
        let _ = run(&mut crc, [true, false, true]);
        crc.reset();
        let mut fresh = CrcWhitener::new(4);
        let input: Vec<bool> = (0..32).map(|i| i % 5 == 0).collect();
        assert_eq!(run(&mut crc, input.clone()), run(&mut fresh, input));
    }

    #[test]
    fn crc_whitener_balances_biased_input() {
        let mut source = biased(0.7, 11);
        let mut crc = CrcWhitener::new(2);
        let out = run(&mut crc, (0..200_000).map(|_| source.next_bit()));
        let frac = out.iter().filter(|&&b| b).count() as f64 / out.len() as f64;
        assert!((frac - 0.5).abs() < 0.005, "frac = {frac}");
    }

    #[test]
    fn chain_composes_ratios_and_streams() {
        let mut chain = XorFold::new(2).then(XorFold::new(3));
        assert_eq!(chain.expected_ratio(), 6.0);
        // XOR of 2 then XOR of 3 == XOR of 6.
        let mut flat = XorFold::new(6);
        let input: Vec<bool> = (0..120).map(|i| (i * 7) % 11 < 5).collect();
        assert_eq!(run(&mut chain, input.clone()), run(&mut flat, input));
    }

    #[test]
    fn conditioned_adaptor_keeps_ledgers() {
        let mut c = Conditioned::new(biased(0.5, 3), XorFold::new(4));
        let _ = c.collect_bits(1000);
        assert_eq!(c.emitted(), 1000);
        assert_eq!(c.consumed(), 4000);
        assert_eq!(c.measured_ratio(), 4.0);
        assert_eq!(c.expected_ratio(), 4.0);
        assert_eq!(c.conditioner().factor(), 4);
    }

    #[test]
    fn conditioned_stream_is_a_pure_function_of_the_raw_stream() {
        // Same seed, different pull patterns: identical conditioned bits.
        let make = || Conditioned::new(biased(0.5, 9), CrcWhitener::new(3));
        let mut per_bit = make();
        let reference: Vec<bool> = (0..500).map(|_| per_bit.next_bit()).collect();
        let mut batched = make();
        assert_eq!(batched.collect_bits(500), reference);
    }

    #[test]
    fn von_neumann_adaptor_debiases_completely() {
        let mut vn = Conditioned::new(biased(0.7, 1), VonNeumannConditioner::new());
        let frac = ones_fraction(&mut vn, 100_000);
        assert!((frac - 0.5).abs() < 0.006, "frac = {frac}");
        // Cost near the 2/(2pq) = 4.76 theory value.
        assert!((vn.measured_ratio() - 4.76).abs() < 0.15);
    }

    #[test]
    fn empty_input_emits_nothing() {
        // Zero pushes -> zero emissions, ledgers stay zeroed, ratio is
        // the defined infinity.
        let c = Conditioned::new(biased(0.5, 1), VonNeumannConditioner::new());
        assert_eq!(c.consumed(), 0);
        assert_eq!(c.emitted(), 0);
        assert!(c.measured_ratio().is_infinite());
    }

    #[test]
    #[should_panic(expected = "decimation factor")]
    fn zero_fold_factor_panics() {
        let _ = XorFold::new(0);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn zero_crc_ratio_panics() {
        let _ = CrcWhitener::new(0);
    }
}
