//! Composable conditioning components — the SP 800-90C "conditioner"
//! box between the raw entropy source and the DRBG.
//!
//! The paper's headline is that DH-TRNG passes the batteries *raw*; a
//! production entropy service still deploys a conditioning stage, both
//! as defence in depth (a degraded source keeps full-entropy output at
//! a reduced rate) and because SP 800-90C requires one between the
//! noise source and the DRBG. This module supplies that stage as small
//! composable state machines:
//!
//! * [`Conditioner`] — the trait: a bit-serial state machine that
//!   consumes raw bits and occasionally emits conditioned bits, with a
//!   declared expected compression ratio (raw bits in per conditioned
//!   bit out);
//! * [`VonNeumannConditioner`] — exact debiasing of an independent
//!   source at an expected 4x+ rate cost;
//! * [`XorFold`] — XOR of `k` raw bits per output bit (piling-up
//!   lemma: residual bias `2^(k-1) * e^k` for input bias `e`);
//! * [`CrcWhitener`] — a CRC-16/CCITT register fed bit-serially with a
//!   **configurable compression ratio**: every `ratio` raw bits, the
//!   register's low bit is emitted. `ratio = 1` whitens at full rate;
//!   `ratio >= 2` compresses, folding `16 + ratio` raw bits of history
//!   into every output bit;
//! * [`LfsrConditioner`] — the legacy rate-preserving 16-bit Fibonacci
//!   LFSR whitener (behind [`LfsrWhitener`](crate::postproc::LfsrWhitener));
//! * [`Chain`] — sequential composition via [`Conditioner::then`];
//! * [`Conditioned`] — the adaptor that mounts any [`Conditioner`] on
//!   any [`Trng`], pulling raw bits through the batched
//!   [`next_word`](Trng::next_word) fast path and keeping
//!   consumed/emitted throughput ledgers.
//!
//! The wrappers in [`postproc`](crate::postproc) are thin shells over
//! these primitives, so the throughput-cost demonstrations and the
//! production conditioning layer share one implementation. The
//! stream-level pipeline (`dhtrng-stream`) mounts the same machines on
//! the sharded merged stream.
//!
//! Conditioned output is a **pure function of the raw bit stream**: no
//! conditioner draws randomness of its own, so for a seeded source the
//! conditioned stream is as reproducible as the raw one, however the
//! raw bits are batched.
//!
//! # Example
//!
//! ```
//! use dhtrng_core::conditioning::{Conditioned, Conditioner, CrcWhitener};
//! use dhtrng_core::{DhTrng, Trng};
//!
//! // 2:1 CRC compression over a DH-TRNG instance.
//! let raw = DhTrng::builder().seed(7).build();
//! let mut conditioned = Conditioned::new(raw, CrcWhitener::new(2));
//! let mut key = [0u8; 32];
//! conditioned.fill_bytes(&mut key);
//! assert_eq!(conditioned.expected_ratio(), 2.0);
//! assert_eq!(conditioned.consumed(), 2 * conditioned.emitted());
//! ```

use crate::trng::Trng;
use std::sync::Arc;

/// A resumable MSB-first bit packer over a caller-owned byte buffer —
/// the output side of the block conditioning path.
///
/// Conditioned bits are appended one emission at a time (or up to 8 at
/// once via [`push_bits`](Self::push_bits)); completed bytes land in
/// the buffer in order and a ≤ 7-bit partial byte is carried in the
/// sink until the next byte completes. The partial state can be
/// extracted with [`into_parts`](Self::into_parts) and resumed with
/// [`from_parts`](Self::from_parts), which is how
/// [`ConditionerStage`](crate::kernel::ConditionerStage) keeps one
/// logical output stream across blocks (and across the staging chunks
/// within a block) without ever allocating.
///
/// Packing matches every other path in the crate: bit `i` of the
/// output stream is bit `7 - i % 8` of byte `i / 8`.
#[derive(Debug)]
pub struct BitSink<'a> {
    buf: &'a mut [u8],
    bytes: usize,
    /// Partial output byte: the low `acc_len` bits, earliest emission
    /// highest.
    acc: u8,
    acc_len: u32,
    /// Bits pushed through this sink instance (for ledgers).
    pushed: u64,
}

impl<'a> BitSink<'a> {
    /// A fresh sink writing from the start of `buf`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Self::from_parts(buf, 0, 0, 0)
    }

    /// Resumes a sink mid-stream: `bytes` bytes of `buf` already hold
    /// output, and `acc_len` (< 8) bits of a partial byte are carried
    /// in the low bits of `acc`.
    pub fn from_parts(buf: &'a mut [u8], bytes: usize, acc: u8, acc_len: u32) -> Self {
        debug_assert!(acc_len < 8);
        Self {
            buf,
            bytes,
            acc,
            acc_len,
            pushed: 0,
        }
    }

    /// Appends one conditioned bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        self.push_bits(u8::from(bit), 1);
    }

    /// Appends `n <= 8` conditioned bits: the earliest is bit `n - 1`
    /// of `bits`, the latest bit 0 (any higher bits are ignored).
    #[inline]
    pub fn push_bits(&mut self, bits: u8, n: u32) {
        debug_assert!(n <= 8);
        if n == 0 {
            return;
        }
        let total = self.acc_len + n;
        let word = (u16::from(self.acc) << n) | (u16::from(bits) & ((1u16 << n) - 1));
        if total >= 8 {
            self.buf[self.bytes] = (word >> (total - 8)) as u8;
            self.bytes += 1;
            self.acc_len = total - 8;
            self.acc = (word & ((1u16 << self.acc_len) - 1)) as u8;
        } else {
            self.acc = word as u8;
            self.acc_len = total;
        }
        self.pushed += u64::from(n);
    }

    /// Completed bytes written so far (including any resumed prefix).
    pub fn bytes_written(&self) -> usize {
        self.bytes
    }

    /// Bits pushed through this sink instance (excludes any resumed
    /// partial prefix).
    pub fn bits_pushed(&self) -> u64 {
        self.pushed
    }

    /// Tears the sink down into `(bytes_written, acc, acc_len)` for a
    /// later [`from_parts`](Self::from_parts).
    pub fn into_parts(self) -> (usize, u8, u32) {
        (self.bytes, self.acc, self.acc_len)
    }
}

/// A bit-serial conditioning state machine.
///
/// Raw bits go in one at a time through [`push`](Self::push); zero or
/// one conditioned bits come out per push. Implementations are pure
/// state machines — deterministic in the raw stream, no internal
/// randomness — so conditioning never *adds* entropy, it only
/// concentrates what the source supplies.
pub trait Conditioner {
    /// Feeds one raw bit; returns a conditioned output bit when the
    /// machine emits on this push.
    fn push(&mut self, raw: bool) -> Option<bool>;

    /// Expected raw bits consumed per conditioned bit emitted
    /// (`>= 1.0`). Exact for fixed-rate conditioners; the long-run
    /// expectation on an unbiased source for variable-rate ones
    /// (Von Neumann).
    fn expected_ratio(&self) -> f64;

    /// Clears the machine back to its initial state (discarding any
    /// partially accumulated input).
    fn reset(&mut self);

    /// Block fast path: consumes whole raw bytes (8 raw bits each,
    /// MSB-first — the packing every [`Trng`] path produces) and
    /// appends the emissions to `sink`.
    ///
    /// The provided implementation unrolls to bit-serial
    /// [`push`](Self::push) calls, so every conditioner gets the block
    /// interface for free and the output is — by construction —
    /// bit-identical to pushing the same bits one at a time. The
    /// in-tree machines override it with table-driven GF(2) kernels
    /// that process 8 raw bits per lookup; overrides must preserve
    /// that exact bit-identity (the conditioned stream is pinned as a
    /// pure function of the raw stream).
    ///
    /// This method is object-safe: `Box<dyn Conditioner>` forwards to
    /// the boxed machine's override.
    fn condition_block(&mut self, raw: &[u8], sink: &mut BitSink<'_>) {
        for &byte in raw {
            for i in (0..8).rev() {
                if let Some(bit) = self.push((byte >> i) & 1 == 1) {
                    sink.push_bit(bit);
                }
            }
        }
    }

    /// Chains another conditioner after this one: raw bits feed `self`,
    /// its output feeds `next`, and `next`'s output is the chain's.
    ///
    /// ```
    /// use dhtrng_core::conditioning::{Conditioner, CrcWhitener, XorFold};
    ///
    /// // XOR-fold by 2, then whiten: 2x compression overall.
    /// let chain = XorFold::new(2).then(CrcWhitener::new(1));
    /// assert_eq!(chain.expected_ratio(), 2.0);
    /// ```
    fn then<B: Conditioner>(self, next: B) -> Chain<Self, B>
    where
        Self: Sized,
    {
        Chain {
            first: self,
            second: next,
        }
    }
}

/// Boxed conditioners condition like their contents, so heterogeneous
/// stacks (e.g. the pipeline's runtime-selected machine) mount anywhere
/// a generic [`Conditioner`] is expected — notably behind
/// [`ConditionerStage`](crate::kernel::ConditionerStage).
impl<C: Conditioner + ?Sized> Conditioner for Box<C> {
    fn push(&mut self, raw: bool) -> Option<bool> {
        (**self).push(raw)
    }

    fn expected_ratio(&self) -> f64 {
        (**self).expected_ratio()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn condition_block(&mut self, raw: &[u8], sink: &mut BitSink<'_>) {
        // Forward explicitly: without this, a boxed machine would fall
        // back to the default bit-serial loop (correct but slow) and
        // the pipeline's runtime-selected conditioner would lose the
        // table-driven fast path.
        (**self).condition_block(raw, sink)
    }
}

/// Marker alias for the block conditioning interface: every
/// [`Conditioner`] is a `BlockConditioner`, because
/// [`Conditioner::condition_block`] ships a provided bit-serial
/// fallback. The alias exists so APIs can name the block-capable bound
/// explicitly; the in-tree machines override the fallback with
/// table-driven GF(2) kernels (see the module docs and DESIGN.md §12).
pub trait BlockConditioner: Conditioner {}

impl<C: Conditioner + ?Sized> BlockConditioner for C {}

/// Von Neumann debiaser: consumes raw bits in pairs; an unequal pair
/// emits its second bit, an equal pair is discarded.
///
/// Removes *all* bias from an independent source; costs `2 / (2pq)` raw
/// bits per output bit (4.0 when unbiased, worse when biased).
#[derive(Debug, Clone, Default)]
pub struct VonNeumannConditioner {
    held: Option<bool>,
}

impl VonNeumannConditioner {
    /// A fresh debiaser (no bit held).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Portable pair-compaction table for the Von Neumann block path.
///
/// Indexed by `d | (v << 1)` where `d` (⊆ 0x55) marks unequal pairs at
/// even bit positions and `v` (⊆ `d`) holds each pair's second bit at
/// the same position: `cnt` is the number of emissions (≤ 4) and
/// `bits` the emitted second bits compacted MSB-first — a table-driven
/// substitute for the `pext` instruction.
struct VnCompact {
    cnt: [u8; 256],
    bits: [u8; 256],
}

const fn build_vn_compact() -> VnCompact {
    let mut cnt = [0u8; 256];
    let mut bits = [0u8; 256];
    let mut idx = 0usize;
    while idx < 256 {
        let d = (idx as u8) & 0x55;
        let v = ((idx as u8) >> 1) & d;
        let mut c = 0u8;
        let mut b = 0u8;
        let mut pos = 6i32;
        loop {
            if (d >> pos) & 1 == 1 {
                b = (b << 1) | ((v >> pos) & 1);
                c += 1;
            }
            if pos == 0 {
                break;
            }
            pos -= 2;
        }
        cnt[idx] = c;
        bits[idx] = b;
        idx += 1;
    }
    VnCompact { cnt, bits }
}

static VN_COMPACT: VnCompact = build_vn_compact();

impl Conditioner for VonNeumannConditioner {
    fn push(&mut self, raw: bool) -> Option<bool> {
        match self.held.take() {
            None => {
                self.held = Some(raw);
                None
            }
            Some(first) => (first != raw).then_some(raw),
        }
    }

    fn expected_ratio(&self) -> f64 {
        4.0
    }

    fn reset(&mut self) {
        self.held = None;
    }

    fn condition_block(&mut self, raw: &[u8], sink: &mut BitSink<'_>) {
        if raw.is_empty() {
            return;
        }
        if let Some(mut h) = self.held.take() {
            // Misaligned stream: the held first-of-pair makes every
            // pair straddle a byte boundary, and each byte re-arms the
            // hold (8 bits = 1 straddling pair + 3 whole pairs + 1
            // leftover), so misalignment is sticky. Per byte: resolve
            // the straddling pair, compact the 3 interior pairs via
            // the same table as the aligned path (shifted left one),
            // and hold the last bit.
            for &b in raw {
                let second = (b >> 7) & 1 == 1;
                if h != second {
                    sink.push_bit(second);
                }
                let t = b << 1;
                let d = ((t >> 1) ^ t) & 0x54;
                let idx = (d | ((t & d) << 1)) as usize;
                sink.push_bits(VN_COMPACT.bits[idx], u32::from(VN_COMPACT.cnt[idx]));
                h = b & 1 == 1;
            }
            self.held = Some(h);
            return;
        }
        // Aligned stream: pairs never straddle bytes and the hold
        // stays clear. Wide-mask pair compare over 64 raw bits at a
        // time: `d` flags unequal pairs, `v` carries each pair's
        // second bit; per-byte table lookups do the bit compaction.
        let mut chunks = raw.chunks_exact(8);
        for chunk in &mut chunks {
            let w = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
            let d = ((w >> 1) ^ w) & 0x5555_5555_5555_5555;
            if d == 0 {
                continue;
            }
            let v = w & d;
            let mut shift = 56i32;
            loop {
                let db = (d >> shift) as u8;
                if db != 0 {
                    let idx = (db | (((v >> shift) as u8) << 1)) as usize;
                    sink.push_bits(VN_COMPACT.bits[idx], u32::from(VN_COMPACT.cnt[idx]));
                }
                if shift == 0 {
                    break;
                }
                shift -= 8;
            }
        }
        for &b in chunks.remainder() {
            let d = ((b >> 1) ^ b) & 0x55;
            let idx = (d | ((b & d) << 1)) as usize;
            sink.push_bits(VN_COMPACT.bits[idx], u32::from(VN_COMPACT.cnt[idx]));
        }
    }
}

/// XOR decimator: each output bit is the XOR of `factor` raw bits.
///
/// By the piling-up lemma (paper Eq. 4), input bias `e` becomes output
/// bias `2^(factor - 1) * e^factor` at a linear `factor : 1` rate cost.
#[derive(Debug, Clone)]
pub struct XorFold {
    factor: u32,
    acc: bool,
    fed: u32,
}

impl XorFold {
    /// A fold over `factor` raw bits per output bit.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn new(factor: u32) -> Self {
        assert!(factor > 0, "decimation factor must be positive");
        Self {
            factor,
            acc: false,
            fed: 0,
        }
    }

    /// The fold factor (= raw bits per output bit).
    pub fn factor(&self) -> u32 {
        self.factor
    }
}

/// Byte-fold tables for the [`XorFold`] block path: packed parities of
/// the consecutive 2-, 4-, and 8-bit groups of a byte (MSB-first), for
/// the aligned byte-divides-factor fast cases.
struct XfFold {
    f2: [u8; 256],
    f4: [u8; 256],
    f8: [u8; 256],
}

const fn xf_groups(b: u8, f: u32) -> u8 {
    let mut out = 0u8;
    let mut g = 0u32;
    while g < 8 / f {
        let seg = (b as u32 >> (8 - f * (g + 1))) & ((1u32 << f) - 1);
        out = (out << 1) | (seg.count_ones() & 1) as u8;
        g += 1;
    }
    out
}

const fn build_xf_fold() -> XfFold {
    let mut t = XfFold {
        f2: [0; 256],
        f4: [0; 256],
        f8: [0; 256],
    };
    let mut b = 0usize;
    while b < 256 {
        t.f2[b] = xf_groups(b as u8, 2);
        t.f4[b] = xf_groups(b as u8, 4);
        t.f8[b] = xf_groups(b as u8, 8);
        b += 1;
    }
    t
}

static XF_FOLD: XfFold = build_xf_fold();

impl Conditioner for XorFold {
    fn push(&mut self, raw: bool) -> Option<bool> {
        self.acc ^= raw;
        self.fed += 1;
        if self.fed == self.factor {
            let out = self.acc;
            self.acc = false;
            self.fed = 0;
            Some(out)
        } else {
            None
        }
    }

    fn expected_ratio(&self) -> f64 {
        f64::from(self.factor)
    }

    fn reset(&mut self) {
        self.acc = false;
        self.fed = 0;
    }

    fn condition_block(&mut self, raw: &[u8], sink: &mut BitSink<'_>) {
        let f = self.factor;
        if f == 1 {
            // Factor 1 is the identity fold: the output byte IS the
            // input byte.
            for &b in raw {
                sink.push_bits(b, 8);
            }
            return;
        }
        for &b in raw {
            if self.fed == 0 && 8 % f == 0 {
                // Aligned and the factor divides the byte: one table
                // lookup folds the whole byte and alignment is sticky.
                let (bits, n) = match f {
                    2 => (XF_FOLD.f2[b as usize], 4),
                    4 => (XF_FOLD.f4[b as usize], 2),
                    _ => (XF_FOLD.f8[b as usize], 1),
                };
                sink.push_bits(bits, n);
                continue;
            }
            if self.fed + 8 < f {
                // The whole byte folds into the accumulator.
                self.acc ^= b.count_ones() & 1 == 1;
                self.fed += 8;
                continue;
            }
            // At least one emission lands inside this byte: close the
            // partial group, fold the whole groups, accumulate the
            // leftover bits.
            let k1 = (f - self.fed) as usize;
            let first = (u32::from(b) >> (8 - k1)).count_ones() & 1 == 1;
            let mut bits = u8::from(self.acc ^ first);
            let mut n = 1u32;
            let mut start = k1;
            while start + f as usize <= 8 {
                let seg = (u32::from(b) >> (8 - start - f as usize)) & ((1u32 << f) - 1);
                bits = (bits << 1) | (seg.count_ones() & 1) as u8;
                n += 1;
                start += f as usize;
            }
            let rem = 8 - start;
            self.acc = rem > 0 && (u32::from(b) & ((1u32 << rem) - 1)).count_ones() & 1 == 1;
            self.fed = rem as u32;
            sink.push_bits(bits, n);
        }
    }
}

/// CRC-16/CCITT polynomial (x^16 + x^12 + x^5 + 1).
const CRC_POLY: u16 = 0x1021;
/// CRC-16/CCITT initial register value.
const CRC_INIT: u16 = 0xFFFF;

/// CRC-based whitener with a configurable compression ratio.
///
/// Raw bits shift serially into a CRC-16/CCITT register; every `ratio`
/// raw bits the register's low bit is emitted. Each output bit
/// therefore mixes the full 16-bit register history plus the `ratio`
/// fresh bits — unlike a plain XOR fold, local raw structure is spread
/// across many output bits.
///
/// * `ratio = 1`: rate-preserving whitening (cosmetic — no entropy is
///   added, exactly like the classic LFSR whitener);
/// * `ratio >= 2`: a genuine conditioner, concentrating `ratio` raw
///   bits into each output bit.
#[derive(Debug, Clone)]
pub struct CrcWhitener {
    ratio: u32,
    crc: u16,
    fed: u32,
    /// GF(2) byte-transition tables for the block path, built once at
    /// construction for this ratio (`None` above
    /// [`CRC_TABLE_MAX_RATIO`], where the bit-serial path is already
    /// emission-starved and cheap). Shared by clones.
    tables: Option<Arc<CrcTables>>,
}

/// Largest ratio for which [`CrcWhitener`] precomputes block tables.
/// Above this, each input byte emits at most rarely and the serial
/// fallback costs little, while the per-phase tables would grow
/// linearly in the ratio.
const CRC_TABLE_MAX_RATIO: u32 = 64;

/// Byte-transition tables for the CRC block path.
///
/// The serial CRC step is linear over GF(2) with no affine term
/// (`crc' = (crc << 1) ^ (fed_back · POLY)`, `fed_back = crc₁₅ ^ raw`),
/// so both the 8-step state advance and the packed emissions
/// superpose: `f(crc, byte) = f(crc_hi, 0) ^ f(crc_lo, 0) ^ f(0, byte)`.
/// State advance is phase-independent (emitting never mutates the
/// register); the emission tables are per phase (`fed` at byte start),
/// because the phase decides *which* of the 8 intermediate low bits
/// are sampled. All entries are built by brute-force simulation of the
/// bit-serial machine, so bit-identity holds by construction.
#[derive(Debug)]
struct CrcTables {
    s_hi: [u16; 256],
    s_lo: [u16; 256],
    s_b: [u16; 256],
    /// Per phase: packed emissions (MSB-first) attributable to the
    /// input byte / register high byte / register low byte.
    e_b: Vec<[u8; 256]>,
    e_hi: Vec<[u8; 256]>,
    e_lo: Vec<[u8; 256]>,
    /// Per phase: emissions per byte (0..=8), the same for every input.
    count: Vec<u8>,
}

fn build_crc_tables(ratio: u32) -> CrcTables {
    let sim = |crc: u16, fed: u32, byte: u8| -> (u16, u8, u8) {
        let mut m = CrcWhitener {
            ratio,
            crc,
            fed,
            tables: None,
        };
        let mut bits = 0u8;
        let mut n = 0u8;
        for i in (0..8).rev() {
            if let Some(bit) = m.push((byte >> i) & 1 == 1) {
                bits = (bits << 1) | u8::from(bit);
                n += 1;
            }
        }
        (m.crc, bits, n)
    };
    let mut t = CrcTables {
        s_hi: [0; 256],
        s_lo: [0; 256],
        s_b: [0; 256],
        e_b: Vec::with_capacity(ratio as usize),
        e_hi: Vec::with_capacity(ratio as usize),
        e_lo: Vec::with_capacity(ratio as usize),
        count: Vec::with_capacity(ratio as usize),
    };
    for x in 0..256usize {
        t.s_hi[x] = sim((x as u16) << 8, 0, 0).0;
        t.s_lo[x] = sim(x as u16, 0, 0).0;
        t.s_b[x] = sim(0, 0, x as u8).0;
    }
    for p in 0..ratio {
        let mut e_b = [0u8; 256];
        let mut e_hi = [0u8; 256];
        let mut e_lo = [0u8; 256];
        for x in 0..256usize {
            e_b[x] = sim(0, p, x as u8).1;
            e_hi[x] = sim((x as u16) << 8, p, 0).1;
            e_lo[x] = sim(x as u16, p, 0).1;
        }
        t.e_b.push(e_b);
        t.e_hi.push(e_hi);
        t.e_lo.push(e_lo);
        t.count.push(sim(0, p, 0).2);
    }
    t
}

impl CrcWhitener {
    /// A whitener emitting one bit per `ratio` raw bits.
    ///
    /// Ratios up to 64 also precompute the GF(2)
    /// byte-transition tables behind
    /// [`condition_block`](Conditioner::condition_block); larger
    /// ratios fall back to the bit-serial path there.
    ///
    /// # Panics
    ///
    /// Panics if `ratio == 0`.
    pub fn new(ratio: u32) -> Self {
        assert!(ratio > 0, "compression ratio must be positive");
        let tables = (ratio <= CRC_TABLE_MAX_RATIO).then(|| Arc::new(build_crc_tables(ratio)));
        Self {
            ratio,
            crc: CRC_INIT,
            fed: 0,
            tables,
        }
    }

    /// The compression ratio (= raw bits per output bit).
    pub fn ratio(&self) -> u32 {
        self.ratio
    }
}

impl Conditioner for CrcWhitener {
    fn push(&mut self, raw: bool) -> Option<bool> {
        // Bit-serial CRC step: feed the raw bit at the register's top.
        let fed_back = (self.crc >> 15) ^ u16::from(raw);
        self.crc <<= 1;
        if fed_back == 1 {
            self.crc ^= CRC_POLY;
        }
        self.fed += 1;
        if self.fed == self.ratio {
            self.fed = 0;
            // Emit the register's low bit. NOT the register parity: the
            // parity of a CRC register is a degenerate linear output —
            // each push flips it iff the raw bit is 1, so a
            // parity-emitting "whitener" collapses to a running XOR
            // accumulator and a stuck source yields constant output.
            // The low bit is a full mix of the register history.
            Some(self.crc & 1 == 1)
        } else {
            None
        }
    }

    fn expected_ratio(&self) -> f64 {
        f64::from(self.ratio)
    }

    fn reset(&mut self) {
        self.crc = CRC_INIT;
        self.fed = 0;
    }

    fn condition_block(&mut self, raw: &[u8], sink: &mut BitSink<'_>) {
        let Some(t) = self.tables.clone() else {
            for &byte in raw {
                for i in (0..8).rev() {
                    if let Some(bit) = self.push((byte >> i) & 1 == 1) {
                        sink.push_bit(bit);
                    }
                }
            }
            return;
        };
        let mut crc = self.crc;
        if 8 % self.ratio == 0 {
            // Constant-phase fast lane (ratio 1/2/4/8): the phase is
            // invariant across bytes, so the per-phase emission tables
            // hoist out of the loop and the packer runs on locals —
            // one flush per input byte at most (n ≤ 8).
            let p = self.fed as usize;
            let n = 8 / self.ratio;
            let (e_b, e_hi, e_lo) = (&t.e_b[p], &t.e_hi[p], &t.e_lo[p]);
            let mut acc = u32::from(sink.acc);
            let mut acc_len = sink.acc_len;
            let mut w = sink.bytes;
            for &b in raw {
                let hi = (crc >> 8) as u8 as usize;
                let lo = crc as u8 as usize;
                let bits = e_b[b as usize] ^ e_hi[hi] ^ e_lo[lo];
                crc = t.s_hi[hi] ^ t.s_lo[lo] ^ t.s_b[b as usize];
                acc = (acc << n) | u32::from(bits);
                acc_len += n;
                if acc_len >= 8 {
                    acc_len -= 8;
                    sink.buf[w] = (acc >> acc_len) as u8;
                    w += 1;
                    acc &= (1u32 << acc_len) - 1;
                }
            }
            sink.pushed += u64::from(n) * raw.len() as u64;
            sink.bytes = w;
            sink.acc = acc as u8;
            sink.acc_len = acc_len;
        } else {
            let mut fed = self.fed;
            for &b in raw {
                let p = fed as usize;
                let hi = (crc >> 8) as u8 as usize;
                let lo = crc as u8 as usize;
                let n = t.count[p];
                if n > 0 {
                    let bits = t.e_b[p][b as usize] ^ t.e_hi[p][hi] ^ t.e_lo[p][lo];
                    sink.push_bits(bits, u32::from(n));
                }
                crc = t.s_hi[hi] ^ t.s_lo[lo] ^ t.s_b[b as usize];
                fed = (fed + 8) % self.ratio;
            }
            self.fed = fed;
        }
        self.crc = crc;
    }
}

/// The legacy 16-bit Fibonacci LFSR whitener (x^16 + x^14 + x^13 +
/// x^11 + 1), rate-preserving: the raw bit is injected into the
/// feedback and the register's low bit is emitted every push.
///
/// This is the exact machine behind
/// [`LfsrWhitener`](crate::postproc::LfsrWhitener); kept distinct from
/// [`CrcWhitener`] so the historical stream stays bit-for-bit stable.
#[derive(Debug, Clone)]
pub struct LfsrConditioner {
    state: u16,
}

impl LfsrConditioner {
    /// Non-zero initial register.
    const SEED: u16 = 0xACE1;

    /// A fresh whitener.
    pub fn new() -> Self {
        Self { state: Self::SEED }
    }
}

impl Default for LfsrConditioner {
    fn default() -> Self {
        Self::new()
    }
}

/// Byte-transition tables for the LFSR block path. The serial step is
/// linear over GF(2) with no affine term (`state' = (state >> 1) ^
/// ((fb ^ raw) << 15)`, `fb` a parity of state taps), so the 8-step
/// advance and the 8 packed emissions both superpose across the state
/// high byte, state low byte, and input byte.
struct LfsrTables {
    s_hi: [u16; 256],
    s_lo: [u16; 256],
    s_b: [u16; 256],
    e_hi: [u8; 256],
    e_lo: [u8; 256],
    e_b: [u8; 256],
}

const fn lfsr_byte(state: u16, byte: u8) -> (u16, u8) {
    let mut s = state;
    let mut out = 0u8;
    let mut i = 7i32;
    loop {
        let raw = ((byte >> i) & 1) as u16;
        let fb = (s ^ (s >> 2) ^ (s >> 3) ^ (s >> 5)) & 1;
        s = (s >> 1) | ((fb ^ raw) << 15);
        out = (out << 1) | (s & 1) as u8;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    (s, out)
}

const fn build_lfsr_tables() -> LfsrTables {
    let mut t = LfsrTables {
        s_hi: [0; 256],
        s_lo: [0; 256],
        s_b: [0; 256],
        e_hi: [0; 256],
        e_lo: [0; 256],
        e_b: [0; 256],
    };
    let mut x = 0usize;
    while x < 256 {
        let (s, e) = lfsr_byte((x as u16) << 8, 0);
        t.s_hi[x] = s;
        t.e_hi[x] = e;
        let (s, e) = lfsr_byte(x as u16, 0);
        t.s_lo[x] = s;
        t.e_lo[x] = e;
        let (s, e) = lfsr_byte(0, x as u8);
        t.s_b[x] = s;
        t.e_b[x] = e;
        x += 1;
    }
    t
}

static LFSR_TABLES: LfsrTables = build_lfsr_tables();

impl Conditioner for LfsrConditioner {
    fn push(&mut self, raw: bool) -> Option<bool> {
        let fb = (self.state ^ (self.state >> 2) ^ (self.state >> 3) ^ (self.state >> 5)) & 1;
        self.state = (self.state >> 1) | ((fb ^ u16::from(raw)) << 15);
        Some(self.state & 1 == 1)
    }

    fn expected_ratio(&self) -> f64 {
        1.0
    }

    fn reset(&mut self) {
        self.state = Self::SEED;
    }

    fn condition_block(&mut self, raw: &[u8], sink: &mut BitSink<'_>) {
        let t = &LFSR_TABLES;
        let mut s = self.state;
        // Rate-preserving: exactly one output byte per input byte, so
        // the packer runs on locals with a single flush per iteration.
        let mut acc = u32::from(sink.acc);
        let acc_len = sink.acc_len;
        let mut w = sink.bytes;
        for &b in raw {
            let hi = (s >> 8) as u8 as usize;
            let lo = s as u8 as usize;
            let out = t.e_hi[hi] ^ t.e_lo[lo] ^ t.e_b[b as usize];
            s = t.s_hi[hi] ^ t.s_lo[lo] ^ t.s_b[b as usize];
            acc = (acc << 8) | u32::from(out);
            sink.buf[w] = (acc >> acc_len) as u8;
            w += 1;
            acc &= (1u32 << acc_len) - 1;
        }
        sink.pushed += 8 * raw.len() as u64;
        sink.bytes = w;
        sink.acc = acc as u8;
        sink.acc_len = acc_len;
        self.state = s;
    }
}

/// Two conditioners in sequence (built by [`Conditioner::then`]): raw
/// bits feed the first; its emissions feed the second; the second's
/// emissions are the chain's output.
#[derive(Debug, Clone)]
pub struct Chain<A, B> {
    first: A,
    second: B,
}

/// Staging-chunk size for the chain block path: the first machine's
/// emissions for one chunk are packed into a stack buffer this large
/// before feeding the second machine's block path.
const CHAIN_STAGING: usize = 64;

impl<A: Conditioner, B: Conditioner> Conditioner for Chain<A, B> {
    fn push(&mut self, raw: bool) -> Option<bool> {
        self.first.push(raw).and_then(|mid| self.second.push(mid))
    }

    fn expected_ratio(&self) -> f64 {
        self.first.expected_ratio() * self.second.expected_ratio()
    }

    fn reset(&mut self) {
        self.first.reset();
        self.second.reset();
    }

    fn condition_block(&mut self, raw: &[u8], sink: &mut BitSink<'_>) {
        // Compose the two block paths through a small stack staging
        // buffer: per input chunk, the first machine's emissions are
        // packed into `mid` (a ratio ≥ 1 bounds them by the chunk size
        // plus a 7-bit overhang, hence the +1 byte), whole mid-bytes
        // feed the second machine's block path, and the ≤ 7 leftover
        // mid-bits are pushed bit-serially — the second machine sees
        // exactly the bit sequence the serial chain would feed it, in
        // order, so the chain stays a pure function of the raw stream
        // and nothing is buffered across calls (no rollback hazard:
        // every staged bit is either emitted into `sink` or absorbed
        // into machine state before this call returns).
        let mut mid = [0u8; CHAIN_STAGING + 1];
        for chunk in raw.chunks(CHAIN_STAGING) {
            let (whole, tail, tail_len) = {
                let mut mid_sink = BitSink::new(&mut mid);
                self.first.condition_block(chunk, &mut mid_sink);
                mid_sink.into_parts()
            };
            self.second.condition_block(&mid[..whole], sink);
            for i in (0..tail_len).rev() {
                if let Some(bit) = self.second.push((tail >> i) & 1 == 1) {
                    sink.push_bit(bit);
                }
            }
        }
    }
}

/// A [`Trng`] whose output is another `Trng` run through a
/// [`Conditioner`] — the single-instance form of the pipeline's
/// conditioned tier.
///
/// Byte reads ([`fill_bytes`](Trng::fill_bytes), and
/// [`next_word`](Trng::next_word) through it) pull raw bytes in staged
/// chunks through the inner generator's batched fast path and run them
/// through the conditioner's block kernel
/// ([`condition_block`](Conditioner::condition_block)); per-bit reads
/// drain any pending block output before falling back to the serial
/// machine. Either way the conditioned stream is identical to a
/// per-bit pull (conditioning is a pure function of the raw stream),
/// just cheaper per raw bit.
///
/// The adaptor keeps a throughput ledger: [`consumed`](Self::consumed)
/// raw bits vs [`emitted`](Self::emitted) conditioned bits, with
/// [`measured_ratio`](Self::measured_ratio) as their quotient.
///
/// # Liveness
///
/// [`next_bit`](Trng::next_bit) pulls raw bits until the conditioner
/// emits; a conditioner that never emits on the given source spins
/// forever — the canonical case is [`VonNeumannConditioner`] over a
/// stuck source, which discards every (equal) pair. Run health tests
/// upstream of the conditioner, as the stream pipeline does: a source
/// degenerate enough to starve a conditioner is one the SP 800-90B
/// continuous tests retire first.
#[derive(Debug, Clone)]
pub struct Conditioned<T, C> {
    inner: T,
    conditioner: C,
    raw_word: u64,
    raw_left: u32,
    /// Conditioned bits emitted by a block-path fill but not yet
    /// handed out (low `out_len` bits, earliest highest).
    out_acc: u8,
    out_len: u32,
    consumed: u64,
    emitted: u64,
}

impl<T: Trng, C: Conditioner> Conditioned<T, C> {
    /// Mounts `conditioner` on `inner`.
    pub fn new(inner: T, conditioner: C) -> Self {
        Self {
            inner,
            conditioner,
            raw_word: 0,
            raw_left: 0,
            out_acc: 0,
            out_len: 0,
            consumed: 0,
            emitted: 0,
        }
    }

    /// Raw bits fed to the conditioner so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Conditioned bits emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Measured raw-bits-per-output-bit (infinite until the first
    /// emission).
    pub fn measured_ratio(&self) -> f64 {
        if self.emitted == 0 {
            f64::INFINITY
        } else {
            self.consumed as f64 / self.emitted as f64
        }
    }

    /// The conditioner's declared expected ratio.
    pub fn expected_ratio(&self) -> f64 {
        self.conditioner.expected_ratio()
    }

    /// The mounted conditioner.
    pub fn conditioner(&self) -> &C {
        &self.conditioner
    }

    /// Unwraps the raw source.
    ///
    /// The source may sit up to 63 bits past the last conditioned bit
    /// handed out: raw bits are pulled in 64-bit words (or staged
    /// chunks on the block path), and a partially drained word — plus
    /// up to 7 conditioned bits a block fill emitted but never handed
    /// out — is dropped here.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Trng, C: Conditioner> Trng for Conditioned<T, C> {
    fn next_bit(&mut self) -> bool {
        // Bits a block fill over-produced come first: they are earlier
        // in the conditioned stream than anything the machine emits
        // next.
        if self.out_len > 0 {
            self.out_len -= 1;
            return (self.out_acc >> self.out_len) & 1 == 1;
        }
        loop {
            if self.raw_left == 0 {
                self.raw_word = self.inner.next_word();
                self.raw_left = 64;
            }
            self.raw_left -= 1;
            let raw = (self.raw_word >> self.raw_left) & 1 == 1;
            self.consumed += 1;
            if let Some(bit) = self.conditioner.push(raw) {
                self.emitted += 1;
                return bit;
            }
        }
    }

    fn next_word(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_be_bytes(bytes)
    }

    fn fill_bytes(&mut self, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let dest_len = buf.len();
        let mut sink = BitSink::from_parts(buf, 0, self.out_acc, self.out_len);
        self.out_acc = 0;
        self.out_len = 0;
        // Stream order: any bits still buffered in the raw word were
        // pulled before whatever the block path pulls next, so they go
        // through the machine first (bit-serially — there are at most
        // 63 of them).
        while sink.bytes_written() < dest_len && self.raw_left > 0 {
            self.raw_left -= 1;
            let raw = (self.raw_word >> self.raw_left) & 1 == 1;
            self.consumed += 1;
            if let Some(bit) = self.conditioner.push(raw) {
                sink.push_bit(bit);
            }
        }
        // Block path: pull raw staging chunks no larger than the
        // remaining output space. Compression ratio ≥ 1 then bounds
        // the sink's completed bytes by the destination length, so the
        // conditioner can never overshoot the buffer (at most 7 bits
        // spill into the partial byte, stashed below).
        let mut staging = [0u8; 64];
        while sink.bytes_written() < dest_len {
            let pull = (dest_len - sink.bytes_written()).min(staging.len());
            self.inner.fill_bytes(&mut staging[..pull]);
            self.consumed += 8 * pull as u64;
            self.conditioner
                .condition_block(&staging[..pull], &mut sink);
        }
        self.emitted += sink.bits_pushed();
        let (_, acc, len) = sink.into_parts();
        self.out_acc = acc;
        self.out_len = len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_noise::NoiseRng;

    /// A tunable biased source.
    struct Biased {
        rng: NoiseRng,
        p_one: f64,
    }

    impl Trng for Biased {
        fn next_bit(&mut self) -> bool {
            self.rng.bernoulli(self.p_one)
        }
    }

    fn biased(p: f64, seed: u64) -> Biased {
        Biased {
            rng: NoiseRng::seed_from_u64(seed),
            p_one: p,
        }
    }

    fn ones_fraction<T: Trng>(t: &mut T, n: usize) -> f64 {
        (0..n).filter(|_| t.next_bit()).count() as f64 / n as f64
    }

    /// Runs `bits` through a conditioner, collecting the emissions.
    fn run<C: Conditioner>(cond: &mut C, bits: impl IntoIterator<Item = bool>) -> Vec<bool> {
        bits.into_iter().filter_map(|b| cond.push(b)).collect()
    }

    #[test]
    fn von_neumann_machine_implements_the_pair_rule() {
        let mut vn = VonNeumannConditioner::new();
        // 00 -> nothing, 01 -> 1, 10 -> 0, 11 -> nothing.
        assert_eq!(
            run(
                &mut vn,
                [false, false, false, true, true, false, true, true]
            ),
            vec![true, false]
        );
    }

    #[test]
    fn xor_fold_emits_every_factor_bits() {
        let mut fold = XorFold::new(3);
        let out = run(&mut fold, [true, true, false, true, false, false]);
        assert_eq!(out, vec![false, true]);
        assert_eq!(fold.factor(), 3);
        // Factor 1 is the identity.
        let mut id = XorFold::new(1);
        let bits = [true, false, true, true];
        assert_eq!(run(&mut id, bits), bits.to_vec());
    }

    #[test]
    fn crc_whitener_respects_ratio_and_resets() {
        for ratio in [1u32, 2, 7, 64] {
            let mut crc = CrcWhitener::new(ratio);
            let n = 5 * ratio as usize + (ratio as usize / 2);
            let out = run(&mut crc, (0..n).map(|i| i % 3 == 0));
            assert_eq!(out.len(), n / ratio as usize, "ratio = {ratio}");
        }
        // reset() discards both the register and the partial count.
        let mut crc = CrcWhitener::new(4);
        let _ = run(&mut crc, [true, false, true]);
        crc.reset();
        let mut fresh = CrcWhitener::new(4);
        let input: Vec<bool> = (0..32).map(|i| i % 5 == 0).collect();
        assert_eq!(run(&mut crc, input.clone()), run(&mut fresh, input));
    }

    #[test]
    fn crc_whitener_balances_biased_input() {
        let mut source = biased(0.7, 11);
        let mut crc = CrcWhitener::new(2);
        let out = run(&mut crc, (0..200_000).map(|_| source.next_bit()));
        let frac = out.iter().filter(|&&b| b).count() as f64 / out.len() as f64;
        assert!((frac - 0.5).abs() < 0.005, "frac = {frac}");
    }

    #[test]
    fn chain_composes_ratios_and_streams() {
        let mut chain = XorFold::new(2).then(XorFold::new(3));
        assert_eq!(chain.expected_ratio(), 6.0);
        // XOR of 2 then XOR of 3 == XOR of 6.
        let mut flat = XorFold::new(6);
        let input: Vec<bool> = (0..120).map(|i| (i * 7) % 11 < 5).collect();
        assert_eq!(run(&mut chain, input.clone()), run(&mut flat, input));
    }

    #[test]
    fn conditioned_adaptor_keeps_ledgers() {
        let mut c = Conditioned::new(biased(0.5, 3), XorFold::new(4));
        let _ = c.collect_bits(1000);
        assert_eq!(c.emitted(), 1000);
        assert_eq!(c.consumed(), 4000);
        assert_eq!(c.measured_ratio(), 4.0);
        assert_eq!(c.expected_ratio(), 4.0);
        assert_eq!(c.conditioner().factor(), 4);
    }

    #[test]
    fn conditioned_stream_is_a_pure_function_of_the_raw_stream() {
        // Same seed, different pull patterns: identical conditioned bits.
        let make = || Conditioned::new(biased(0.5, 9), CrcWhitener::new(3));
        let mut per_bit = make();
        let reference: Vec<bool> = (0..500).map(|_| per_bit.next_bit()).collect();
        let mut batched = make();
        assert_eq!(batched.collect_bits(500), reference);
    }

    #[test]
    fn von_neumann_adaptor_debiases_completely() {
        let mut vn = Conditioned::new(biased(0.7, 1), VonNeumannConditioner::new());
        let frac = ones_fraction(&mut vn, 100_000);
        assert!((frac - 0.5).abs() < 0.006, "frac = {frac}");
        // Cost near the 2/(2pq) = 4.76 theory value.
        assert!((vn.measured_ratio() - 4.76).abs() < 0.15);
    }

    #[test]
    fn empty_input_emits_nothing() {
        // Zero pushes -> zero emissions, ledgers stay zeroed, ratio is
        // the defined infinity.
        let c = Conditioned::new(biased(0.5, 1), VonNeumannConditioner::new());
        assert_eq!(c.consumed(), 0);
        assert_eq!(c.emitted(), 0);
        assert!(c.measured_ratio().is_infinite());
    }

    /// Reference: push `raw` bit-serially through a fresh clone of the
    /// machine's state, packing emissions like the block path does.
    fn serial_block<C: Conditioner + Clone>(cond: &C, raw: &[u8]) -> (Vec<u8>, u8, u32) {
        let mut serial = cond.clone();
        let mut out = vec![0u8; raw.len() + 1];
        let (bytes, acc, len) = {
            let mut sink = BitSink::new(&mut out);
            for &byte in raw {
                for i in (0..8).rev() {
                    if let Some(bit) = serial.push((byte >> i) & 1 == 1) {
                        sink.push_bit(bit);
                    }
                }
            }
            sink.into_parts()
        };
        out.truncate(bytes);
        (out, acc, len)
    }

    /// Asserts the block path matches the serial path bit-for-bit over
    /// `raw`, split across arbitrary slice boundaries, and returns the
    /// machine in its post-block state.
    fn assert_block_matches<C: Conditioner + Clone>(mut cond: C, raw: &[u8], splits: &[usize]) {
        let (want, want_acc, want_len) = serial_block(&cond, raw);
        let mut out = vec![0u8; raw.len() + 1];
        let (bytes, acc, len) = {
            let mut sink = BitSink::new(&mut out);
            let mut pos = 0;
            for &s in splits {
                let end = (pos + s).min(raw.len());
                cond.condition_block(&raw[pos..end], &mut sink);
                pos = end;
            }
            cond.condition_block(&raw[pos..], &mut sink);
            sink.into_parts()
        };
        out.truncate(bytes);
        assert_eq!(out, want);
        assert_eq!((acc, len), (want_acc, want_len));
    }

    fn test_bytes(n: usize, seed: u64) -> Vec<u8> {
        use rand::RngCore;
        let mut rng = NoiseRng::seed_from_u64(seed);
        (0..n).map(|_| rng.next_u64() as u8).collect()
    }

    #[test]
    fn block_paths_match_serial_for_every_machine() {
        let raw = test_bytes(4096, 21);
        let splits = [1usize, 7, 64, 3, 1000, 13];
        for ratio in [1u32, 2, 3, 5, 7, 8, 11, 63, 64, 65, 200] {
            assert_block_matches(CrcWhitener::new(ratio), &raw, &splits);
        }
        for factor in [1u32, 2, 3, 4, 5, 7, 8, 9, 64, 100] {
            assert_block_matches(XorFold::new(factor), &raw, &splits);
        }
        assert_block_matches(LfsrConditioner::new(), &raw, &splits);
        assert_block_matches(VonNeumannConditioner::new(), &raw, &splits);
    }

    #[test]
    fn block_path_matches_serial_mid_stream_phases() {
        // Start each machine mid-phase (serial pushes first), then run
        // the block path: the tables must resume from any reachable
        // interior state, including a misaligned Von Neumann hold.
        let raw = test_bytes(512, 33);
        for lead in 1..=9usize {
            let lead_bits: Vec<bool> = (0..lead).map(|i| i % 3 == 0).collect();
            for ratio in [1u32, 2, 3, 64] {
                let mut crc = CrcWhitener::new(ratio);
                lead_bits.iter().for_each(|&b| {
                    crc.push(b);
                });
                assert_block_matches(crc, &raw, &[17, 1]);
            }
            for factor in [2u32, 4, 6, 8] {
                let mut xf = XorFold::new(factor);
                lead_bits.iter().for_each(|&b| {
                    xf.push(b);
                });
                assert_block_matches(xf, &raw, &[17, 1]);
            }
            let mut vn = VonNeumannConditioner::new();
            lead_bits.iter().for_each(|&b| {
                vn.push(b);
            });
            assert_block_matches(vn, &raw, &[17, 1]);
        }
    }

    #[test]
    fn chain_block_path_matches_serial() {
        let raw = test_bytes(2048, 55);
        let splits = [200usize, 3, 64];
        assert_block_matches(XorFold::new(2).then(CrcWhitener::new(1)), &raw, &splits);
        assert_block_matches(CrcWhitener::new(2).then(XorFold::new(3)), &raw, &splits);
        assert_block_matches(
            VonNeumannConditioner::new().then(LfsrConditioner::new()),
            &raw,
            &splits,
        );
        assert_block_matches(
            LfsrConditioner::new()
                .then(XorFold::new(2))
                .then(CrcWhitener::new(2)),
            &raw,
            &splits,
        );
    }

    #[test]
    fn boxed_conditioner_forwards_the_block_path() {
        // A boxed machine must produce the same stream as its unboxed
        // self (the Box impl forwards condition_block to the override).
        let raw = test_bytes(1024, 77);
        let (want, want_acc, want_len) = serial_block(&CrcWhitener::new(2), &raw);
        let mut boxed: Box<dyn Conditioner + Send> = Box::new(CrcWhitener::new(2));
        let mut out = vec![0u8; raw.len() + 1];
        let (bytes, acc, len) = {
            let mut sink = BitSink::new(&mut out);
            boxed.condition_block(&raw, &mut sink);
            sink.into_parts()
        };
        out.truncate(bytes);
        assert_eq!(out, want);
        assert_eq!((acc, len), (want_acc, want_len));
    }

    #[test]
    fn bit_sink_packs_and_resumes() {
        let mut buf = [0u8; 4];
        let (bytes, acc, len) = {
            let mut sink = BitSink::new(&mut buf);
            sink.push_bits(0b101, 3); // 1 0 1
            sink.push_bit(true); // 1
            sink.push_bits(0xFF, 6); // 1 1 1 1 1 1
            assert_eq!(sink.bits_pushed(), 10);
            sink.into_parts()
        };
        assert_eq!(bytes, 1);
        assert_eq!(buf[0], 0b1011_1111);
        assert_eq!((acc, len), (0b11, 2));
        let (bytes, _, len) = {
            let mut sink = BitSink::from_parts(&mut buf, bytes, acc, len);
            sink.push_bits(0b110101, 6); // completes 0b11_110101
            sink.into_parts()
        };
        assert_eq!(bytes, 2);
        assert_eq!(buf[1], 0b1111_0101);
        assert_eq!(len, 0);
    }

    #[test]
    fn conditioned_fill_bytes_matches_next_bit_stream() {
        // The block-path fill must walk the same conditioned stream as
        // per-bit pulls, for compressing, rate-preserving, and
        // variable-rate machines — including interleaved pulls that
        // leave partial output bits stashed.
        fn check<C: Conditioner + Clone>(cond: C) {
            let make = |c: C| Conditioned::new(biased(0.5, 42), c);
            let mut per_bit = make(cond.clone());
            let reference: Vec<bool> = (0..61 * 8).map(|_| per_bit.next_bit()).collect();
            let mut packed = Vec::new();
            for chunk in reference.chunks(8) {
                packed.push(chunk.iter().fold(0u8, |a, &b| (a << 1) | u8::from(b)));
            }

            let mut filled = make(cond.clone());
            let mut buf = [0u8; 61];
            filled.fill_bytes(&mut buf);
            assert_eq!(&buf[..], &packed[..], "single fill");

            let mut mixed = make(cond);
            let mut got: Vec<bool> = Vec::new();
            got.push(mixed.next_bit());
            let mut b = [0u8; 13];
            mixed.fill_bytes(&mut b);
            got.extend(
                b.iter()
                    .flat_map(|&x| (0..8).rev().map(move |i| (x >> i) & 1 == 1)),
            );
            got.push(mixed.next_bit());
            got.push(mixed.next_bit());
            let mut b2 = [0u8; 20];
            mixed.fill_bytes(&mut b2);
            got.extend(
                b2.iter()
                    .flat_map(|&x| (0..8).rev().map(move |i| (x >> i) & 1 == 1)),
            );
            assert_eq!(got, reference[..got.len()], "interleaved pulls");
        }
        check(CrcWhitener::new(2));
        check(CrcWhitener::new(1));
        check(LfsrConditioner::new());
        check(VonNeumannConditioner::new());
        check(XorFold::new(4));
        check(XorFold::new(2).then(CrcWhitener::new(2)));
    }

    #[test]
    fn conditioned_block_fill_keeps_ledgers() {
        let mut c = Conditioned::new(biased(0.5, 3), XorFold::new(4));
        let mut buf = [0u8; 125];
        c.fill_bytes(&mut buf);
        assert_eq!(c.emitted(), 1000);
        assert_eq!(c.consumed(), 4000);
        assert_eq!(c.measured_ratio(), 4.0);
    }

    #[test]
    #[should_panic(expected = "decimation factor")]
    fn zero_fold_factor_panics() {
        let _ = XorFold::new(0);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn zero_crc_ratio_panics() {
        let _ = CrcWhitener::new(0);
    }
}
