use dhtrng_core::{DhTrng, Trng};

#[test]
fn mcv_band_smoke() {
    // Inline MCV (no stattests dep in core): mode frequency + CI.
    for (name, mut trng, lo, hi) in [
        ("A7", DhTrng::builder().seed(11).build(), 0.9935, 0.9985),
        ("V6", DhTrng::builder().device(dhtrng_fpga::Device::virtex6()).seed(12).build(), 0.9935, 0.9985),
    ] {
        let n = 1_000_000;
        let ones = (0..n).filter(|_| trng.next_bit()).count();
        let p_hat = (ones.max(n - ones)) as f64 / n as f64;
        let p_u = p_hat + 2.5758 * (p_hat * (1.0 - p_hat) / (n as f64 - 1.0)).sqrt();
        let h = -(p_u.log2());
        println!("{name}: ones frac {}, h_mcv {h:.6}", ones as f64 / n as f64);
        assert!(h > lo && h < hi, "{name}: h = {h}");
    }
}
