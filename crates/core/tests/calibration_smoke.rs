use dhtrng_core::{DhTrng, Trng};

#[test]
fn fixed_seed_output_is_reproducible() {
    // Reproducibility guard for CI: the same seed must produce the same
    // first 1 KiB of output on every platform and every run. Two
    // independently built generators also cross-check that no hidden
    // global state leaks between instances.
    let collect_1kib = || {
        let mut trng = DhTrng::builder().seed(0x0D4C_2024).build();
        let mut buf = [0u8; 1024];
        trng.fill_bytes(&mut buf);
        buf
    };
    let a = collect_1kib();
    let b = collect_1kib();
    assert_eq!(a, b, "same seed, same stream");

    // First 16 bytes of the seed-0x0D4C2024 stream, captured at workspace
    // bootstrap. Drift here means the model (or the noise RNG behind it)
    // changed behaviour, which invalidates every calibrated table in the
    // repository and must be deliberate.
    const EXPECTED_HEAD: [u8; 16] = [
        0xb9, 0x6d, 0x97, 0x65, 0xb3, 0xfd, 0xf0, 0x89, 0x6b, 0xfb, 0x4b, 0x5d, 0x65, 0xdf, 0xde,
        0x1b,
    ];
    assert_eq!(
        &a[..16],
        EXPECTED_HEAD,
        "seeded stream prefix drifted — recalibrate or revert"
    );

    // A different seed must diverge immediately (first 16 bytes).
    let mut other = DhTrng::builder().seed(0x0D4C_2025).build();
    let mut other_buf = [0u8; 16];
    other.fill_bytes(&mut other_buf);
    assert_ne!(
        other_buf.as_slice(),
        &a[..16],
        "different seed, different stream"
    );
}

#[test]
fn mcv_band_smoke() {
    // Inline MCV (no stattests dep in core): mode frequency + CI.
    for (name, mut trng, lo, hi) in [
        ("A7", DhTrng::builder().seed(11).build(), 0.9935, 0.9985),
        (
            "V6",
            DhTrng::builder()
                .device(dhtrng_fpga::Device::virtex6())
                .seed(12)
                .build(),
            0.9935,
            0.9985,
        ),
    ] {
        let n = 1_000_000;
        let ones = (0..n).filter(|_| trng.next_bit()).count();
        let p_hat = (ones.max(n - ones)) as f64 / n as f64;
        let p_u = p_hat + 2.5758 * (p_hat * (1.0 - p_hat) / (n as f64 - 1.0)).sqrt();
        let h = -(p_u.log2());
        println!("{name}: ones frac {}, h_mcv {h:.6}", ones as f64 / n as f64);
        assert!(h > lo && h < hi, "{name}: h = {h}");
    }
}
