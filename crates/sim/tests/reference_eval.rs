//! Property test: the event-driven engine must agree with a direct
//! combinational evaluation on random feed-forward circuits.
//!
//! Random DAGs of gates are built over a set of primary inputs; the
//! engine settles each input vector while a straight-line evaluator
//! computes the expected outputs. Any divergence means the engine's
//! scheduling/cancellation logic dropped or duplicated an update.

use dhtrng_noise::NoiseRng;
use dhtrng_sim::{Engine, Femtos, GateKind, Level, NetId, Netlist};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GateSpec {
    kind_idx: usize,
    in_a: usize,
    in_b: usize,
    in_c: usize,
}

const KINDS: [GateKind; 8] = [
    GateKind::Inv,
    GateKind::Buf,
    GateKind::And2,
    GateKind::Nand2,
    GateKind::Or2,
    GateKind::Nor2,
    GateKind::Xor2,
    GateKind::Mux2,
];

fn gate_strategy() -> impl Strategy<Value = GateSpec> {
    (
        0usize..KINDS.len(),
        any::<usize>(),
        any::<usize>(),
        any::<usize>(),
    )
        .prop_map(|(kind_idx, in_a, in_b, in_c)| GateSpec {
            kind_idx,
            in_a,
            in_b,
            in_c,
        })
}

/// Straight-line reference evaluation of the DAG.
fn reference_eval(inputs: &[bool], gates: &[GateSpec]) -> Vec<bool> {
    let mut values: Vec<bool> = inputs.to_vec();
    for g in gates {
        let n = values.len();
        let a = values[g.in_a % n];
        let b = values[g.in_b % n];
        let c = values[g.in_c % n];
        let out = match KINDS[g.kind_idx] {
            GateKind::Inv => !a,
            GateKind::Buf => a,
            GateKind::And2 => a & b,
            GateKind::Nand2 => !(a & b),
            GateKind::Or2 => a | b,
            GateKind::Nor2 => !(a | b),
            GateKind::Xor2 => a ^ b,
            GateKind::Mux2 => {
                if a {
                    c
                } else {
                    b
                }
            }
            _ => unreachable!(),
        };
        values.push(out);
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_reference_on_random_dags(
        input_bits in proptest::collection::vec(any::<bool>(), 2..6),
        gates in proptest::collection::vec(gate_strategy(), 1..24),
    ) {
        // Build the netlist: primary inputs first, then gates in
        // topological (declaration) order referencing earlier nets only.
        let mut nl = Netlist::new();
        let mut nets: Vec<NetId> = (0..input_bits.len())
            .map(|i| nl.add_net(format!("in{i}")))
            .collect();
        for (gi, g) in gates.iter().enumerate() {
            let n = nets.len();
            let a = nets[g.in_a % n];
            let b = nets[g.in_b % n];
            let c = nets[g.in_c % n];
            let out = nl.add_net(format!("g{gi}"));
            let kind = KINDS[g.kind_idx];
            match kind.arity() {
                Some(1) => { nl.add_gate(kind, &[a], out, Femtos::from_ps(100.0)); }
                Some(2) => { nl.add_gate(kind, &[a, b], out, Femtos::from_ps(100.0)); }
                Some(3) => { nl.add_gate(kind, &[a, b, c], out, Femtos::from_ps(100.0)); }
                _ => unreachable!(),
            }
            nets.push(out);
        }

        let mut engine = Engine::new(nl, NoiseRng::seed_from_u64(7)).unwrap();
        for (i, &bit) in input_bits.iter().enumerate() {
            engine.drive(nets[i], Femtos::ZERO, Level::from(bit));
        }
        // Longest combinational path <= #gates x 100 ps; settle well past.
        engine.run_until(Femtos::from_ns(0.2 * gates.len() as f64 + 1.0));

        let expected = reference_eval(&input_bits, &gates);
        for (i, &net) in nets.iter().enumerate() {
            let got = engine.value(net);
            prop_assert_eq!(
                got,
                Level::from(expected[i]),
                "net {} diverged (gate {:?})",
                i,
                gates.get(i.wrapping_sub(input_bits.len()))
            );
        }
    }
}
