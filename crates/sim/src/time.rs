//! Simulation time as an integer femtosecond count.
//!
//! Integer time makes event ordering exact (no floating-point ties) and a
//! `u64` femtosecond counter spans ~5.1 hours of simulated time — eight
//! orders of magnitude beyond what any experiment here needs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant or duration in femtoseconds (`1e-15 s`).
///
/// # Example
///
/// ```
/// use dhtrng_sim::Femtos;
///
/// let t = Femtos::from_ns(2.0) + Femtos::from_ps(500.0);
/// assert_eq!(t.as_fs(), 2_500_000);
/// assert!((t.as_seconds() - 2.5e-9).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Femtos(u64);

impl Femtos {
    /// Time zero.
    pub const ZERO: Femtos = Femtos(0);
    /// Largest representable time.
    pub const MAX: Femtos = Femtos(u64::MAX);

    /// Creates a time from a raw femtosecond count.
    pub const fn from_fs(fs: u64) -> Self {
        Femtos(fs)
    }

    /// Creates a time from picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is negative, NaN, or too large to represent.
    pub fn from_ps(ps: f64) -> Self {
        Self::from_seconds(ps * 1e-12)
    }

    /// Creates a time from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative, NaN, or too large to represent.
    pub fn from_ns(ns: f64) -> Self {
        Self::from_seconds(ns * 1e-9)
    }

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_seconds(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "time must be finite and >= 0, got {s}"
        );
        let fs = s * 1e15;
        assert!(fs <= u64::MAX as f64, "time too large: {s} s");
        Femtos(fs.round() as u64)
    }

    /// The raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// The time in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// The time in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// The time in seconds.
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Femtos) -> Femtos {
        Femtos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Femtos) -> Option<Femtos> {
        self.0.checked_add(rhs.0).map(Femtos)
    }

    /// Multiplies a duration by an integer count.
    pub fn mul_u64(self, k: u64) -> Femtos {
        Femtos(self.0.checked_mul(k).expect("time overflow"))
    }

    /// Scales a duration by a non-negative float (rounds to nearest fs).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> Femtos {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and >= 0"
        );
        Femtos((self.0 as f64 * factor).round() as u64)
    }

    /// Signed difference in seconds (`self - other`).
    pub fn signed_delta_seconds(self, other: Femtos) -> f64 {
        if self.0 >= other.0 {
            (self.0 - other.0) as f64 * 1e-15
        } else {
            -((other.0 - self.0) as f64 * 1e-15)
        }
    }
}

impl Add for Femtos {
    type Output = Femtos;
    fn add(self, rhs: Femtos) -> Femtos {
        Femtos(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign for Femtos {
    fn add_assign(&mut self, rhs: Femtos) {
        *self = *self + rhs;
    }
}

impl Sub for Femtos {
    type Output = Femtos;
    fn sub(self, rhs: Femtos) -> Femtos {
        Femtos(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl SubAssign for Femtos {
    fn sub_assign(&mut self, rhs: Femtos) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Femtos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        if fs >= 1_000_000_000 {
            write!(f, "{:.3} us", fs as f64 * 1e-9)
        } else if fs >= 1_000_000 {
            write!(f, "{:.3} ns", fs as f64 * 1e-6)
        } else if fs >= 1_000 {
            write!(f, "{:.3} ps", fs as f64 * 1e-3)
        } else {
            write!(f, "{fs} fs")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = Femtos::from_ps(1234.0);
        assert_eq!(t.as_fs(), 1_234_000);
        assert!((t.as_ps() - 1234.0).abs() < 1e-9);
        assert!((t.as_ns() - 1.234).abs() < 1e-12);
        assert!((Femtos::from_ns(2.5).as_seconds() - 2.5e-9).abs() < 1e-20);
    }

    #[test]
    fn arithmetic() {
        let a = Femtos::from_fs(100);
        let b = Femtos::from_fs(30);
        assert_eq!((a + b).as_fs(), 130);
        assert_eq!((a - b).as_fs(), 70);
        assert_eq!(b.saturating_sub(a), Femtos::ZERO);
        assert_eq!(a.mul_u64(3).as_fs(), 300);
        assert_eq!(a.scale(0.5).as_fs(), 50);
    }

    #[test]
    fn signed_delta() {
        let a = Femtos::from_fs(100);
        let b = Femtos::from_fs(130);
        assert!((a.signed_delta_seconds(b) + 30e-15).abs() < 1e-20);
        assert!((b.signed_delta_seconds(a) - 30e-15).abs() < 1e-20);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Femtos::from_fs(5), Femtos::from_fs(1), Femtos::from_fs(3)];
        v.sort();
        assert_eq!(
            v,
            vec![Femtos::from_fs(1), Femtos::from_fs(3), Femtos::from_fs(5)]
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Femtos::from_fs(12)), "12 fs");
        assert_eq!(format!("{}", Femtos::from_ps(1.5)), "1.500 ps");
        assert_eq!(format!("{}", Femtos::from_ns(2.0)), "2.000 ns");
    }

    #[test]
    #[should_panic(expected = "time must be finite")]
    fn negative_time_panics() {
        let _ = Femtos::from_ns(-1.0);
    }

    #[test]
    #[should_panic(expected = "time underflow")]
    fn sub_underflow_panics() {
        let _ = Femtos::from_fs(1) - Femtos::from_fs(2);
    }
}
