//! Event-driven gate-level digital circuit simulator.
//!
//! This crate is the "FPGA fabric" of the DH-TRNG reproduction: it
//! simulates the paper's circuits — ring oscillators, MUX-switched loops,
//! XOR rings, and sampling flip-flops — at the granularity of individual
//! gate transitions in continuous (femtosecond-resolution) time, with two
//! analog effects injected from [`dhtrng_noise`]:
//!
//! * every gate delay carries a per-event Gaussian **jitter** draw, so free
//!   running rings accumulate phase noise exactly as the paper's Eq. 1
//!   models;
//! * flip-flops whose data input toggles inside the setup/hold window
//!   resolve **metastably** via the Gaussian-CDF law of the paper's Eq. 2.
//!
//! Gates use *inertial* delay semantics: pulses shorter than a gate's
//! delay are swallowed, which is what makes the DH-TRNG's "holding loop"
//! lock mid-transition pulses into ambiguous states.
//!
//! The simulator is deliberately small (a handful of primitive gates, one
//! clocked element) but exact about ordering and reproducibility: two runs
//! with the same netlist and seed produce identical event sequences.
//!
//! # Example: an enabled 3-stage ring oscillator
//!
//! ```
//! use dhtrng_noise::NoiseRng;
//! use dhtrng_sim::{Engine, Femtos, GateKind, Level, Netlist};
//!
//! let mut nl = Netlist::new();
//! let en = nl.add_net("en");
//! let a = nl.add_net("a");
//! let b = nl.add_net("b");
//! let c = nl.add_net("c");
//! // NAND(en, c) -> a closes the loop; two inverters complete 3 stages.
//! nl.add_gate(GateKind::Nand2, &[en, c], a, Femtos::from_ps(350.0));
//! nl.add_gate(GateKind::Inv, &[a], b, Femtos::from_ps(350.0));
//! nl.add_gate(GateKind::Inv, &[b], c, Femtos::from_ps(350.0));
//!
//! let mut engine = Engine::new(nl, NoiseRng::seed_from_u64(1)).unwrap();
//! engine.drive(en, Femtos::ZERO, Level::Low);     // settle first
//! engine.drive(en, Femtos::from_ns(5.0), Level::High); // then oscillate
//! let probe = engine.attach_probe(c);
//! engine.run_until(Femtos::from_ns(100.0));
//! let wave = engine.waveform(probe).unwrap();
//! assert!(wave.rising_edges().count() > 10, "ring must oscillate");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod gate;
pub mod level;
pub mod netlist;
pub mod time;
pub mod vcd;
pub mod waveform;

pub use engine::{Engine, EngineStats, ProbeId};
pub use gate::GateKind;
pub use level::Level;
pub use netlist::{DffId, DffSpec, GateId, NetId, Netlist, NetlistError};
pub use time::Femtos;
pub use waveform::Waveform;
