//! VCD (Value Change Dump) export.
//!
//! Writes probed waveforms in the IEEE 1364 VCD format, so circuit runs
//! can be inspected in GTKWave or any other standard waveform viewer —
//! the software stand-in for the paper's oscilloscope captures.

use crate::level::Level;
use crate::time::Femtos;
use crate::waveform::Waveform;

/// A named signal for VCD export.
#[derive(Debug, Clone)]
pub struct VcdSignal<'a> {
    /// Signal name as shown in the viewer.
    pub name: String,
    /// The recorded waveform.
    pub wave: &'a Waveform,
}

fn vcd_char(level: Level) -> char {
    match level {
        Level::Low => '0',
        Level::High => '1',
        Level::Unknown => 'x',
    }
}

/// Identifier codes: `!`, `"`, `#`, ... (printable ASCII from 33).
fn id_code(index: usize) -> String {
    let mut i = index;
    let mut out = String::new();
    loop {
        out.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    out
}

/// Renders the given signals as a VCD document with 1 fs timescale.
///
/// # Panics
///
/// Panics if `signals` is empty.
///
/// # Example
///
/// ```
/// use dhtrng_sim::{vcd, Engine, Femtos, GateKind, Level, Netlist};
/// use dhtrng_noise::NoiseRng;
///
/// let mut nl = Netlist::new();
/// let a = nl.add_net("a");
/// let b = nl.add_net("b");
/// nl.add_gate(GateKind::Inv, &[a], b, Femtos::from_ps(100.0));
/// let mut e = Engine::new(nl, NoiseRng::seed_from_u64(1)).unwrap();
/// let probe = e.attach_probe(b);
/// e.drive(a, Femtos::ZERO, Level::Low);
/// e.run_until(Femtos::from_ns(1.0));
/// let doc = vcd::render(&[vcd::VcdSignal {
///     name: "b".into(),
///     wave: e.waveform(probe).unwrap(),
/// }]);
/// assert!(doc.contains("$timescale 1 fs $end"));
/// ```
pub fn render(signals: &[VcdSignal<'_>]) -> String {
    assert!(!signals.is_empty(), "VCD export needs at least one signal");
    let mut out = String::new();
    out.push_str("$comment dhtrng-sim waveform dump $end\n");
    out.push_str("$timescale 1 fs $end\n");
    out.push_str("$scope module dh_trng $end\n");
    for (i, s) in signals.iter().enumerate() {
        out.push_str(&format!("$var wire 1 {} {} $end\n", id_code(i), s.name));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Merge all transitions into one time-ordered stream.
    let mut events: Vec<(Femtos, usize, Level)> = Vec::new();
    for (i, s) in signals.iter().enumerate() {
        for &(t, v) in s.wave.samples() {
            events.push((t, i, v));
        }
    }
    events.sort_by_key(|&(t, i, _)| (t, i));

    let mut current_time: Option<Femtos> = None;
    for (t, i, v) in events {
        if current_time != Some(t) {
            out.push_str(&format!("#{}\n", t.as_fs()));
            current_time = Some(t);
        }
        out.push_str(&format!("{}{}\n", vcd_char(v), id_code(i)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> Waveform {
        let mut w = Waveform::new(Femtos::ZERO, Level::Low);
        w.record_for_test(Femtos::from_fs(100), Level::High);
        w.record_for_test(Femtos::from_fs(250), Level::Low);
        w
    }

    #[test]
    fn header_and_transitions() {
        let w = wave();
        let doc = render(&[VcdSignal {
            name: "clk".into(),
            wave: &w,
        }]);
        assert!(doc.contains("$timescale 1 fs $end"));
        assert!(doc.contains("$var wire 1 ! clk $end"));
        assert!(doc.contains("#100\n1!"));
        assert!(doc.contains("#250\n0!"));
        // Initial value at time 0.
        assert!(doc.contains("#0\n0!"));
    }

    #[test]
    fn multiple_signals_get_distinct_ids() {
        let w1 = wave();
        let w2 = wave();
        let doc = render(&[
            VcdSignal {
                name: "a".into(),
                wave: &w1,
            },
            VcdSignal {
                name: "b".into(),
                wave: &w2,
            },
        ]);
        assert!(doc.contains("$var wire 1 ! a $end"));
        assert!(doc.contains("$var wire 1 \" b $end"));
        // Shared timestamps appear once, carrying both changes.
        let hundred = doc.matches("#100\n").count();
        assert_eq!(hundred, 1);
    }

    #[test]
    fn id_codes_roll_over() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!\"");
    }

    #[test]
    #[should_panic(expected = "at least one signal")]
    fn empty_export_panics() {
        let _ = render(&[]);
    }
}
