//! Netlist construction and validation.
//!
//! A [`Netlist`] is the structural description the engine executes: named
//! nets, combinational gates with per-gate delay and jitter, and clocked
//! D flip-flops with setup/hold windows. The DH-TRNG core crate builds its
//! circuits (Figures 3–5 of the paper) through this API.

use crate::gate::GateKind;
use crate::level::Level;
use crate::time::Femtos;

/// Identifier of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifier of a combinational gate within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub(crate) u32);

/// Identifier of a D flip-flop within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DffId(pub(crate) u32);

impl NetId {
    /// The raw index (useful for dense per-net tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named net.
#[derive(Debug, Clone)]
pub(crate) struct Net {
    pub name: String,
    pub initial: Level,
}

/// A combinational gate instance.
#[derive(Debug, Clone)]
pub(crate) struct Gate {
    pub kind: GateKind,
    pub inputs: Vec<NetId>,
    pub output: NetId,
    pub delay: Femtos,
    pub jitter_sigma: Femtos,
}

/// Default clock-to-Q delay of an FPGA slice flip-flop.
pub const DFF_CLK_TO_Q: Femtos = Femtos::from_fs(200_000); // 200 ps
/// Default setup window of an FPGA slice flip-flop.
pub const DFF_SETUP: Femtos = Femtos::from_fs(50_000); // 50 ps
/// Default hold window of an FPGA slice flip-flop.
pub const DFF_HOLD: Femtos = Femtos::from_fs(10_000); // 10 ps
/// Default metastability resolution sigma (matches
/// [`dhtrng_noise::metastability::FPGA_DFF_SIGMA`]).
pub const DFF_META_SIGMA: Femtos = Femtos::from_fs(25_000); // 25 ps

/// A D flip-flop instance: rising-edge triggered, with a setup/hold window
/// and a metastability resolution parameter.
#[derive(Debug, Clone)]
pub struct DffSpec {
    /// Data input net.
    pub d: NetId,
    /// Clock net (rising-edge triggered).
    pub clk: NetId,
    /// Output net (must have no other driver).
    pub q: NetId,
    /// Clock-to-Q propagation delay.
    pub clk_to_q: Femtos,
    /// Setup window: data must be stable this long before the clock edge.
    pub setup: Femtos,
    /// Hold window: data must stay stable this long after the clock edge.
    pub hold: Femtos,
    /// Metastability resolution sigma (paper Eq. 2).
    pub meta_sigma: Femtos,
    /// Power-up value of Q.
    pub initial_q: Level,
}

impl DffSpec {
    /// A flip-flop with FPGA-typical timing (200 ps clk-to-Q, 50 ps setup,
    /// 10 ps hold, 25 ps metastability sigma, powers up low).
    pub fn fpga(d: NetId, clk: NetId, q: NetId) -> Self {
        Self {
            d,
            clk,
            q,
            clk_to_q: DFF_CLK_TO_Q,
            setup: DFF_SETUP,
            hold: DFF_HOLD,
            meta_sigma: DFF_META_SIGMA,
            initial_q: Level::Low,
        }
    }
}

/// Structural errors detected by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net is driven by more than one gate/flip-flop output.
    MultipleDrivers {
        /// The over-driven net's name.
        net: String,
    },
    /// A gate or flip-flop references a net that does not exist.
    UnknownNet {
        /// The raw id that was out of range.
        id: u32,
    },
    /// A combinational gate was declared with a non-positive delay, which
    /// would allow zero-time event loops.
    ZeroDelay {
        /// The gate's output net name.
        net: String,
    },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has more than one driver")
            }
            NetlistError::UnknownNet { id } => write!(f, "reference to unknown net id {id}"),
            NetlistError::ZeroDelay { net } => {
                write!(f, "gate driving `{net}` has zero delay")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Resource usage of a netlist in FPGA-cell terms.
///
/// The bridge to `dhtrng-fpga`: the paper reports its design as 23 LUTs,
/// 4 MUXes and 14 DFFs (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistResources {
    /// Gates that map to LUTs.
    pub luts: u32,
    /// Gates that map to dedicated slice MUXes.
    pub muxes: u32,
    /// Flip-flops.
    pub dffs: u32,
}

/// A gate-level circuit description.
///
/// See the [crate-level example](crate) for typical construction.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub(crate) nets: Vec<Net>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) dffs: Vec<DffSpec>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a net. The initial level is `Unknown` (HDL `X`).
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.add_net_with_initial(name, Level::Unknown)
    }

    /// Adds a net with an explicit power-up level.
    pub fn add_net_with_initial(&mut self, name: impl Into<String>, initial: Level) -> NetId {
        let id = NetId(u32::try_from(self.nets.len()).expect("too many nets"));
        self.nets.push(Net {
            name: name.into(),
            initial,
        });
        id
    }

    /// Adds a combinational gate with zero jitter.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the gate's arity.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
        delay: Femtos,
    ) -> GateId {
        self.add_gate_jittered(kind, inputs, output, delay, Femtos::ZERO)
    }

    /// Adds a combinational gate whose delay carries Gaussian jitter with
    /// the given RMS on every evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the gate's arity.
    pub fn add_gate_jittered(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
        delay: Femtos,
        jitter_sigma: Femtos,
    ) -> GateId {
        if let Some(n) = kind.arity() {
            assert_eq!(inputs.len(), n, "{kind} expects {n} inputs");
        } else {
            assert!(inputs.len() >= 2, "{kind} expects at least 2 inputs");
        }
        let id = GateId(u32::try_from(self.gates.len()).expect("too many gates"));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
            jitter_sigma,
        });
        id
    }

    /// Adds a D flip-flop.
    pub fn add_dff(&mut self, spec: DffSpec) -> DffId {
        let id = DffId(u32::try_from(self.dffs.len()).expect("too many dffs"));
        self.dffs.push(spec);
        id
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of combinational gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this netlist.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.nets[net.index()].name
    }

    /// FPGA-cell resource usage (LUT/MUX/DFF counts).
    pub fn resources(&self) -> NetlistResources {
        let mut r = NetlistResources::default();
        for g in &self.gates {
            if g.kind.is_lut() {
                r.luts += 1;
            } else {
                r.muxes += 1;
            }
        }
        r.dffs = u32::try_from(self.dffs.len()).expect("too many dffs");
        r
    }

    /// Checks structural invariants: single driver per net, all net
    /// references in range, and strictly positive gate delays.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.nets.len();
        let check = |id: NetId| -> Result<(), NetlistError> {
            if id.index() < n {
                Ok(())
            } else {
                Err(NetlistError::UnknownNet { id: id.0 })
            }
        };
        let mut driver_count = vec![0u32; n];
        for g in &self.gates {
            for &i in &g.inputs {
                check(i)?;
            }
            check(g.output)?;
            if g.delay == Femtos::ZERO {
                return Err(NetlistError::ZeroDelay {
                    net: self.nets[g.output.index()].name.clone(),
                });
            }
            driver_count[g.output.index()] += 1;
        }
        for d in &self.dffs {
            check(d.d)?;
            check(d.clk)?;
            check(d.q)?;
            driver_count[d.q.index()] += 1;
        }
        for (i, &c) in driver_count.iter().enumerate() {
            if c > 1 {
                return Err(NetlistError::MultipleDrivers {
                    net: self.nets[i].name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let q = nl.add_net("q");
        let clk = nl.add_net("clk");
        nl.add_gate(GateKind::Inv, &[a], b, Femtos::from_ps(100.0));
        nl.add_gate(GateKind::Mux2, &[a, b, c], c, Femtos::from_ps(100.0));
        nl.add_dff(DffSpec::fpga(b, clk, q));
        assert_eq!(nl.net_count(), 5);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.dff_count(), 1);
        let r = nl.resources();
        assert_eq!((r.luts, r.muxes, r.dffs), (1, 1, 1));
        assert_eq!(nl.net_name(a), "a");
    }

    #[test]
    fn validate_ok_for_legal_netlist() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Inv, &[a], b, Femtos::from_ps(100.0));
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn validate_rejects_multiple_drivers() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Inv, &[a], b, Femtos::from_ps(100.0));
        nl.add_gate(GateKind::Buf, &[a], b, Femtos::from_ps(100.0));
        assert_eq!(
            nl.validate(),
            Err(NetlistError::MultipleDrivers { net: "b".into() })
        );
    }

    #[test]
    fn validate_rejects_zero_delay() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Inv, &[a], b, Femtos::ZERO);
        assert_eq!(
            nl.validate(),
            Err(NetlistError::ZeroDelay { net: "b".into() })
        );
    }

    #[test]
    fn error_display() {
        let e = NetlistError::MultipleDrivers { net: "x".into() };
        assert_eq!(e.to_string(), "net `x` has more than one driver");
        let e = NetlistError::UnknownNet { id: 7 };
        assert_eq!(e.to_string(), "reference to unknown net id 7");
    }

    #[test]
    #[should_panic(expected = "expects 1 inputs")]
    fn wrong_arity_panics_at_build() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Inv, &[a, b], a, Femtos::from_ps(1.0));
    }
}
