//! Combinational gate primitives.
//!
//! These are the cell types the DH-TRNG maps to FPGA LUTs and slice MUXes
//! (paper §3.3): inverters/buffers for ring stages, NANDs for ring enables,
//! XORs for the coupling rings and sampling tree, and the 2:1 MUX that
//! implements RO2's dynamic loop switching.

use crate::level::Level;

/// The combinational cell types supported by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter (1 input).
    Inv,
    /// Non-inverting buffer (1 input; models routing delay).
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input NAND (ring-enable gate).
    Nand2,
    /// 2-input OR.
    Or2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR (coupling rings, output tree).
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; inputs are `[sel, in0, in1]` (RO2 loop switch).
    Mux2,
    /// N-input XOR tree (sampling array reduction); at least 2 inputs.
    XorN,
}

impl GateKind {
    /// Number of inputs this gate expects, or `None` for variadic gates.
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Inv | GateKind::Buf => Some(1),
            GateKind::And2
            | GateKind::Nand2
            | GateKind::Or2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2 => Some(2),
            GateKind::Mux2 => Some(3),
            GateKind::XorN => None,
        }
    }

    /// Evaluates the gate over the given input levels.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match [`GateKind::arity`] (or is
    /// less than 2 for [`GateKind::XorN`]).
    pub fn eval(self, inputs: &[Level]) -> Level {
        if let Some(n) = self.arity() {
            assert_eq!(
                inputs.len(),
                n,
                "{self:?} expects {n} inputs, got {}",
                inputs.len()
            );
        } else {
            assert!(
                inputs.len() >= 2,
                "{self:?} expects at least 2 inputs, got {}",
                inputs.len()
            );
        }
        match self {
            GateKind::Inv => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::And2 => inputs[0].and(inputs[1]),
            GateKind::Nand2 => !inputs[0].and(inputs[1]),
            GateKind::Or2 => inputs[0].or(inputs[1]),
            GateKind::Nor2 => !inputs[0].or(inputs[1]),
            GateKind::Xor2 => inputs[0].xor(inputs[1]),
            GateKind::Xnor2 => !inputs[0].xor(inputs[1]),
            GateKind::Mux2 => Level::mux(inputs[0], inputs[1], inputs[2]),
            GateKind::XorN => inputs.iter().copied().fold(Level::Low, Level::xor),
        }
    }

    /// Whether this cell maps to an FPGA LUT (vs a dedicated slice MUX).
    ///
    /// Used by the resource-counting bridge to `dhtrng-fpga`: the paper
    /// counts LUTs and slice MUXes separately (23 LUTs + 4 MUXes).
    pub fn is_lut(self) -> bool {
        !matches!(self, GateKind::Mux2)
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GateKind::Inv => "INV",
            GateKind::Buf => "BUF",
            GateKind::And2 => "AND2",
            GateKind::Nand2 => "NAND2",
            GateKind::Or2 => "OR2",
            GateKind::Nor2 => "NOR2",
            GateKind::Xor2 => "XOR2",
            GateKind::Xnor2 => "XNOR2",
            GateKind::Mux2 => "MUX2",
            GateKind::XorN => "XORN",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Level::{High, Low, Unknown};

    #[test]
    fn truth_tables_defined_inputs() {
        let cases: &[(GateKind, &[Level], Level)] = &[
            (GateKind::Inv, &[Low], High),
            (GateKind::Inv, &[High], Low),
            (GateKind::Buf, &[High], High),
            (GateKind::And2, &[High, High], High),
            (GateKind::And2, &[High, Low], Low),
            (GateKind::Nand2, &[High, High], Low),
            (GateKind::Nand2, &[Low, High], High),
            (GateKind::Or2, &[Low, Low], Low),
            (GateKind::Or2, &[Low, High], High),
            (GateKind::Nor2, &[Low, Low], High),
            (GateKind::Xor2, &[High, Low], High),
            (GateKind::Xor2, &[High, High], Low),
            (GateKind::Xnor2, &[High, High], High),
            (GateKind::Mux2, &[Low, High, Low], High),
            (GateKind::Mux2, &[High, High, Low], Low),
        ];
        for (kind, inputs, expected) in cases {
            assert_eq!(kind.eval(inputs), *expected, "{kind:?} {inputs:?}");
        }
    }

    #[test]
    fn nand_enable_forces_defined_output() {
        // The ring-enable property: NAND with a low enable defines the
        // output even when the loop input is X.
        assert_eq!(GateKind::Nand2.eval(&[Low, Unknown]), High);
    }

    #[test]
    fn xorn_parity() {
        let inputs = [High, Low, High, High];
        assert_eq!(GateKind::XorN.eval(&inputs), High); // parity of 3 ones
        let inputs = [High, High, Low, Low];
        assert_eq!(GateKind::XorN.eval(&inputs), Low);
        let with_x = [High, Unknown, Low];
        assert_eq!(GateKind::XorN.eval(&with_x), Unknown);
    }

    #[test]
    fn arity_checks() {
        assert_eq!(GateKind::Inv.arity(), Some(1));
        assert_eq!(GateKind::Mux2.arity(), Some(3));
        assert_eq!(GateKind::XorN.arity(), None);
    }

    #[test]
    fn lut_classification() {
        assert!(GateKind::Inv.is_lut());
        assert!(GateKind::Xor2.is_lut());
        assert!(!GateKind::Mux2.is_lut());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        let _ = GateKind::And2.eval(&[High]);
    }
}
