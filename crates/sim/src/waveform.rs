//! Recorded signal traces.
//!
//! A [`Waveform`] is the list of `(time, level)` transitions observed on a
//! probed net, plus the analysis helpers the experiments need: edge
//! extraction, period/duty statistics, and point sampling. This replaces
//! the oscilloscope + UART capture path of the paper's Figure 6 platform.

use crate::level::Level;
use crate::time::Femtos;

/// A recorded trace of one net.
///
/// The first entry is the net's value at the moment the probe was
/// attached; every subsequent entry is a transition.
#[derive(Debug, Clone, Default)]
pub struct Waveform {
    samples: Vec<(Femtos, Level)>,
}

impl Waveform {
    /// Creates an empty waveform starting with `initial` at `t0`.
    pub fn new(t0: Femtos, initial: Level) -> Self {
        Self {
            samples: vec![(t0, initial)],
        }
    }

    /// Appends a transition (test/tooling constructor; the engine uses
    /// the crate-internal path).
    #[doc(hidden)]
    pub fn record_for_test(&mut self, t: Femtos, level: Level) {
        self.record(t, level);
    }

    /// Appends a transition. Called by the engine.
    pub(crate) fn record(&mut self, t: Femtos, level: Level) {
        debug_assert!(
            self.samples.last().map_or(true, |&(pt, _)| pt <= t),
            "waveform records must be time-ordered"
        );
        self.samples.push((t, level));
    }

    /// All recorded `(time, level)` points, time-ordered.
    pub fn samples(&self) -> &[(Femtos, Level)] {
        &self.samples
    }

    /// Number of recorded transitions (excluding the initial value).
    pub fn transition_count(&self) -> usize {
        self.samples.len().saturating_sub(1)
    }

    /// Times of rising (`-> High` from `Low`) edges.
    pub fn rising_edges(&self) -> impl Iterator<Item = Femtos> + '_ {
        self.samples
            .windows(2)
            .filter_map(|w| (w[0].1 == Level::Low && w[1].1 == Level::High).then_some(w[1].0))
    }

    /// Times of falling (`-> Low` from `High`) edges.
    pub fn falling_edges(&self) -> impl Iterator<Item = Femtos> + '_ {
        self.samples
            .windows(2)
            .filter_map(|w| (w[0].1 == Level::High && w[1].1 == Level::Low).then_some(w[1].0))
    }

    /// The signal level at time `t` (the most recent recorded value at or
    /// before `t`), or `Level::Unknown` before the first record.
    pub fn value_at(&self, t: Femtos) -> Level {
        match self.samples.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => {
                // Several probes can share a timestamp only via distinct
                // nets, so an exact hit is unique; take it.
                self.samples[i].1
            }
            Err(0) => Level::Unknown,
            Err(i) => self.samples[i - 1].1,
        }
    }

    /// Mean period estimated from consecutive rising edges, if at least
    /// two rising edges were recorded.
    pub fn mean_period(&self) -> Option<Femtos> {
        let edges: Vec<Femtos> = self.rising_edges().collect();
        if edges.len() < 2 {
            return None;
        }
        let span = *edges.last().unwrap() - edges[0];
        Some(Femtos::from_fs(span.as_fs() / (edges.len() as u64 - 1)))
    }

    /// Sample standard deviation of the rising-edge periods, in seconds.
    ///
    /// This is the measured period jitter of an oscillating net.
    pub fn period_jitter_sigma(&self) -> Option<f64> {
        let edges: Vec<Femtos> = self.rising_edges().collect();
        if edges.len() < 3 {
            return None;
        }
        let periods: Vec<f64> = edges
            .windows(2)
            .map(|w| w[1].signed_delta_seconds(w[0]))
            .collect();
        let n = periods.len() as f64;
        let mean = periods.iter().sum::<f64>() / n;
        let var = periods.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / (n - 1.0);
        Some(var.sqrt())
    }

    /// Fraction of time spent high between the first record and `until`.
    pub fn duty_cycle(&self, until: Femtos) -> f64 {
        let mut high = 0u64;
        let mut total = 0u64;
        for w in self.samples.windows(2) {
            let (t0, v) = w[0];
            let t1 = w[1].0.min(until);
            if t1 <= t0 {
                continue;
            }
            let dt = (t1 - t0).as_fs();
            total += dt;
            if v == Level::High {
                high += dt;
            }
        }
        if let Some(&(t_last, v)) = self.samples.last() {
            if until > t_last {
                let dt = (until - t_last).as_fs();
                total += dt;
                if v == Level::High {
                    high += dt;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            high as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> Waveform {
        let mut w = Waveform::new(Femtos::ZERO, Level::Low);
        w.record(Femtos::from_fs(100), Level::High);
        w.record(Femtos::from_fs(150), Level::Low);
        w.record(Femtos::from_fs(200), Level::High);
        w.record(Femtos::from_fs(250), Level::Low);
        w.record(Femtos::from_fs(300), Level::High);
        w
    }

    #[test]
    fn edge_extraction() {
        let w = wave();
        let rising: Vec<u64> = w.rising_edges().map(Femtos::as_fs).collect();
        assert_eq!(rising, vec![100, 200, 300]);
        let falling: Vec<u64> = w.falling_edges().map(Femtos::as_fs).collect();
        assert_eq!(falling, vec![150, 250]);
        assert_eq!(w.transition_count(), 5);
    }

    #[test]
    fn value_at_times() {
        let w = wave();
        assert_eq!(w.value_at(Femtos::from_fs(0)), Level::Low);
        assert_eq!(w.value_at(Femtos::from_fs(99)), Level::Low);
        assert_eq!(w.value_at(Femtos::from_fs(100)), Level::High);
        assert_eq!(w.value_at(Femtos::from_fs(149)), Level::High);
        assert_eq!(w.value_at(Femtos::from_fs(175)), Level::Low);
        assert_eq!(w.value_at(Femtos::from_fs(1000)), Level::High);
    }

    #[test]
    fn mean_period_of_regular_wave() {
        let w = wave();
        assert_eq!(w.mean_period(), Some(Femtos::from_fs(100)));
    }

    #[test]
    fn period_jitter_of_regular_wave_is_zero() {
        let w = wave();
        assert!(w.period_jitter_sigma().unwrap() < 1e-18);
    }

    #[test]
    fn duty_cycle_half() {
        let w = wave();
        let d = w.duty_cycle(Femtos::from_fs(300));
        // High during [100,150), [200,250): 100 fs of 300 fs.
        assert!((d - 100.0 / 300.0).abs() < 1e-12, "duty = {d}");
    }

    #[test]
    fn duty_cycle_extends_last_value() {
        let w = wave();
        let d = w.duty_cycle(Femtos::from_fs(400));
        // Additional 100 fs high after the last record.
        assert!((d - 200.0 / 400.0).abs() < 1e-12, "duty = {d}");
    }

    #[test]
    fn empty_window_duty_is_zero() {
        let w = Waveform::new(Femtos::ZERO, Level::High);
        assert_eq!(w.duty_cycle(Femtos::ZERO), 0.0);
    }
}
