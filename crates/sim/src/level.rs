//! Three-valued logic levels with X-propagation.
//!
//! Before a circuit is enabled its feedback nets have no defined value;
//! `Unknown` propagates through gates exactly as in an HDL simulator until
//! a controlling input (e.g. the enable of a NAND) forces a defined level.
//! The DH-TRNG's enable signal does precisely this: with `En = 0` every
//! ring settles to a defined state, and entropy extraction starts when
//! `En` rises.

/// A digital logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Logic 0.
    Low,
    /// Logic 1.
    High,
    /// Undefined / uninitialised (HDL `X`).
    #[default]
    Unknown,
}

impl Level {
    /// Converts to a `bool`, if defined.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Level::Low => Some(false),
            Level::High => Some(true),
            Level::Unknown => None,
        }
    }

    /// Whether the level is defined (not `Unknown`).
    pub fn is_defined(self) -> bool {
        self != Level::Unknown
    }

    /// Logical AND with X-propagation (`0 AND x = 0`).
    pub fn and(self, rhs: Level) -> Level {
        match (self, rhs) {
            (Level::Low, _) | (_, Level::Low) => Level::Low,
            (Level::High, Level::High) => Level::High,
            _ => Level::Unknown,
        }
    }

    /// Logical OR with X-propagation (`1 OR x = 1`).
    pub fn or(self, rhs: Level) -> Level {
        match (self, rhs) {
            (Level::High, _) | (_, Level::High) => Level::High,
            (Level::Low, Level::Low) => Level::Low,
            _ => Level::Unknown,
        }
    }

    /// Logical XOR with X-propagation (any X in, X out).
    pub fn xor(self, rhs: Level) -> Level {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Level::from(a ^ b),
            _ => Level::Unknown,
        }
    }

    /// 2:1 multiplexer: returns `a` when `sel` is low, `b` when high.
    ///
    /// With an undefined select the output is defined only when both data
    /// inputs agree.
    pub fn mux(sel: Level, a: Level, b: Level) -> Level {
        match sel {
            Level::Low => a,
            Level::High => b,
            Level::Unknown => {
                if a == b {
                    a
                } else {
                    Level::Unknown
                }
            }
        }
    }
}

/// Logical NOT with X-propagation.
impl std::ops::Not for Level {
    type Output = Level;

    fn not(self) -> Level {
        match self {
            Level::Low => Level::High,
            Level::High => Level::Low,
            Level::Unknown => Level::Unknown,
        }
    }
}

impl From<bool> for Level {
    fn from(b: bool) -> Self {
        if b {
            Level::High
        } else {
            Level::Low
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::Low => write!(f, "0"),
            Level::High => write!(f, "1"),
            Level::Unknown => write!(f, "X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Level::{High, Low, Unknown};

    #[test]
    fn not_table() {
        assert_eq!(!Low, High);
        assert_eq!(!High, Low);
        assert_eq!(!Unknown, Unknown);
    }

    #[test]
    fn and_controlling_zero() {
        assert_eq!(Low.and(Unknown), Low);
        assert_eq!(Unknown.and(Low), Low);
        assert_eq!(High.and(High), High);
        assert_eq!(High.and(Unknown), Unknown);
    }

    #[test]
    fn or_controlling_one() {
        assert_eq!(High.or(Unknown), High);
        assert_eq!(Unknown.or(High), High);
        assert_eq!(Low.or(Low), Low);
        assert_eq!(Low.or(Unknown), Unknown);
    }

    #[test]
    fn xor_propagates_x() {
        assert_eq!(Low.xor(High), High);
        assert_eq!(High.xor(High), Low);
        assert_eq!(High.xor(Unknown), Unknown);
        assert_eq!(Unknown.xor(Unknown), Unknown);
    }

    #[test]
    fn mux_select() {
        assert_eq!(Level::mux(Low, High, Low), High);
        assert_eq!(Level::mux(High, High, Low), Low);
        assert_eq!(Level::mux(Unknown, High, High), High);
        assert_eq!(Level::mux(Unknown, High, Low), Unknown);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Level::from(true).to_bool(), Some(true));
        assert_eq!(Level::from(false).to_bool(), Some(false));
        assert_eq!(Unknown.to_bool(), None);
        assert!(!Unknown.is_defined());
        assert!(High.is_defined());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{Low}{High}{Unknown}"), "01X");
    }
}
