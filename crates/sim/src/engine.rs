//! The event-driven simulation engine.
//!
//! Executes a validated [`Netlist`] in femtosecond-resolution time with
//! inertial gate delays, per-event jitter, rising-edge flip-flops with
//! metastable resolution, periodic clock generators, external stimuli, and
//! waveform probes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dhtrng_noise::gaussian::sample_normal;
use dhtrng_noise::metastability::MetastabilityModel;
use dhtrng_noise::NoiseRng;

use crate::level::Level;
use crate::netlist::{DffId, GateId, NetId, Netlist, NetlistError};
use crate::time::Femtos;
use crate::waveform::Waveform;

/// Handle to a waveform probe attached with [`Engine::attach_probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeId(usize);

/// Counters describing how much work the engine has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events popped from the queue (including stale/cancelled ones).
    pub events: u64,
    /// Net value changes actually applied.
    pub net_transitions: u64,
    /// Flip-flop sampling (clock-edge) operations.
    pub dff_samples: u64,
    /// Flip-flop samples that violated setup/hold and resolved metastably.
    pub metastable_samples: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Gate- or flip-flop-driven net change, subject to inertial
    /// cancellation via `token`.
    NetChange {
        net: NetId,
        value: Level,
        token: u64,
    },
    /// External stimulus: applied unconditionally.
    Drive { net: NetId, value: Level },
    /// Periodic clock edge; re-schedules itself.
    ClockTick { clock: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: Femtos,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    token: u64,
    time: Femtos,
    value: Level,
}

#[derive(Debug, Clone)]
struct NetState {
    value: Level,
    last_change: Femtos,
    pending: Option<Pending>,
    probe: Option<ProbeId>,
    forced: bool,
}

#[derive(Debug, Clone)]
struct ClockGen {
    net: NetId,
    half_periods: [Femtos; 2], // [high time, low time]
    next_level: Level,
}

/// The event-driven simulator.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Engine {
    netlist: Netlist,
    fanout_gates: Vec<Vec<GateId>>,
    fanout_dffs: Vec<Vec<DffId>>,
    states: Vec<NetState>,
    queue: BinaryHeap<Reverse<Event>>,
    time: Femtos,
    seq: u64,
    token: u64,
    rng: NoiseRng,
    delay_factor: f64,
    jitter_factor: f64,
    probes: Vec<Waveform>,
    clocks: Vec<ClockGen>,
    stats: EngineStats,
    event_limit: Option<u64>,
}

impl Engine {
    /// Builds an engine over a netlist, validating it first.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`NetlistError`] if the netlist is
    /// structurally invalid.
    pub fn new(netlist: Netlist, rng: NoiseRng) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let n = netlist.net_count();
        let mut fanout_gates = vec![Vec::new(); n];
        for (gi, g) in netlist.gates.iter().enumerate() {
            for &i in &g.inputs {
                let list = &mut fanout_gates[i.index()];
                let id = GateId(gi as u32);
                if !list.contains(&id) {
                    list.push(id);
                }
            }
        }
        let mut fanout_dffs = vec![Vec::new(); n];
        for (di, d) in netlist.dffs.iter().enumerate() {
            fanout_dffs[d.clk.index()].push(DffId(di as u32));
        }
        let states = netlist
            .nets
            .iter()
            .map(|net| NetState {
                value: net.initial,
                last_change: Femtos::ZERO,
                pending: None,
                probe: None,
                forced: false,
            })
            .collect::<Vec<_>>();
        let mut engine = Self {
            netlist,
            fanout_gates,
            fanout_dffs,
            states,
            queue: BinaryHeap::new(),
            time: Femtos::ZERO,
            seq: 0,
            token: 0,
            rng,
            delay_factor: 1.0,
            jitter_factor: 1.0,
            probes: Vec::new(),
            clocks: Vec::new(),
            stats: EngineStats::default(),
            event_limit: None,
        };
        // Power-up DFF outputs.
        for di in 0..engine.netlist.dffs.len() {
            let (q, init) = {
                let d = &engine.netlist.dffs[di];
                (d.q, d.initial_q)
            };
            engine.states[q.index()].value = init;
        }
        // Time-0 settling pass: evaluate every gate once so defined
        // power-up levels propagate (otherwise a gate whose inputs never
        // change would never be evaluated at all). Only defined results
        // are scheduled: X must not clobber explicit power-up levels —
        // real nodes always hold some voltage.
        for gi in 0..engine.netlist.gates.len() {
            engine.settle_gate(GateId(gi as u32));
        }
        Ok(engine)
    }

    /// Scales all gate delays (PVT slow-down/speed-up). Must be positive.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn set_delay_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "delay factor must be positive");
        self.delay_factor = factor;
    }

    /// Scales all jitter RMS values (PVT noise scaling). Must be >= 0.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 0`.
    pub fn set_jitter_factor(&mut self, factor: f64) {
        assert!(factor >= 0.0, "jitter factor must be >= 0");
        self.jitter_factor = factor;
    }

    /// Current simulation time.
    pub fn now(&self) -> Femtos {
        self.time
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> Level {
        self.states[net.index()].value
    }

    /// Work counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Immutable access to the netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Schedules an external stimulus: `net` takes `value` at `time`.
    ///
    /// Drives are applied unconditionally (no inertial cancellation), so a
    /// sequence of drives on the same net all take effect.
    pub fn drive(&mut self, net: NetId, time: Femtos, value: Level) {
        self.push(time, EventKind::Drive { net, value });
    }

    /// Fault injection: pins `net` to `value` immediately and ignores all
    /// subsequent driver events (a stuck-at fault). Useful for verifying
    /// that health monitors and statistical batteries catch dead rings.
    pub fn inject_stuck(&mut self, net: NetId, value: Level) {
        self.states[net.index()].pending = None;
        self.apply_change(net, value);
        self.states[net.index()].forced = true;
    }

    /// Releases a previously injected stuck-at fault; the net resumes at
    /// its next driver evaluation.
    pub fn release_stuck(&mut self, net: NetId) {
        self.states[net.index()].forced = false;
        // Re-evaluate the net's driver so the circuit recovers.
        for gi in 0..self.netlist.gates.len() {
            if self.netlist.gates[gi].output == net {
                self.evaluate_gate(GateId(gi as u32));
            }
        }
    }

    /// Installs a free-running clock on `net`: first rising edge at
    /// `first_rise`, then alternating with the given `high`/`low` times.
    ///
    /// # Panics
    ///
    /// Panics if either half-period is zero.
    pub fn add_clock(&mut self, net: NetId, first_rise: Femtos, high: Femtos, low: Femtos) {
        assert!(
            high > Femtos::ZERO && low > Femtos::ZERO,
            "half-periods must be positive"
        );
        let id = self.clocks.len();
        self.clocks.push(ClockGen {
            net,
            half_periods: [high, low],
            next_level: Level::High,
        });
        self.push(first_rise, EventKind::ClockTick { clock: id });
    }

    /// Installs a 50 %-duty clock of the given period.
    pub fn add_clock_50(&mut self, net: NetId, first_rise: Femtos, period: Femtos) {
        let half = Femtos::from_fs(period.as_fs() / 2);
        self.add_clock(net, first_rise, half, period - half);
    }

    /// Attaches a waveform probe to a net. The probe records the net's
    /// current value and every subsequent transition.
    pub fn attach_probe(&mut self, net: NetId) -> ProbeId {
        let id = ProbeId(self.probes.len());
        self.probes
            .push(Waveform::new(self.time, self.states[net.index()].value));
        self.states[net.index()].probe = Some(id);
        id
    }

    /// The waveform recorded by a probe.
    pub fn waveform(&self, probe: ProbeId) -> Option<&Waveform> {
        self.probes.get(probe.0)
    }

    /// Caps the total number of events the engine will process; reaching
    /// the cap makes [`Engine::run_until`] panic. A guard against
    /// accidental runaway oscillation in scripted experiments.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = Some(limit);
    }

    /// Runs until the event queue is exhausted or simulated time reaches
    /// `until`. Events at exactly `until` are processed.
    ///
    /// # Panics
    ///
    /// Panics if an event limit was set with [`Engine::set_event_limit`]
    /// and the run exceeds it.
    pub fn run_until(&mut self, until: Femtos) {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if ev.time > until {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked event vanished");
            self.time = ev.time;
            self.stats.events += 1;
            if let Some(limit) = self.event_limit {
                assert!(
                    self.stats.events <= limit,
                    "event limit {limit} exceeded at {} — runaway oscillation?",
                    self.time
                );
            }
            self.dispatch(ev);
        }
        if self.time < until {
            self.time = until;
        }
    }

    /// Runs for `duration` beyond the current time.
    pub fn run_for(&mut self, duration: Femtos) {
        let until = self.time + duration;
        self.run_until(until);
    }

    fn push(&mut self, time: Femtos, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.kind {
            EventKind::NetChange { net, value, token } => {
                let valid = self.states[net.index()]
                    .pending
                    .is_some_and(|p| p.token == token);
                if !valid {
                    return; // cancelled by a later evaluation
                }
                self.states[net.index()].pending = None;
                self.apply_change(net, value);
            }
            EventKind::Drive { net, value } => {
                // External drive overrides any pending internal event.
                self.states[net.index()].pending = None;
                self.apply_change(net, value);
            }
            EventKind::ClockTick { clock } => {
                let (net, level, dwell) = {
                    let c = &mut self.clocks[clock];
                    let level = c.next_level;
                    let dwell = if level == Level::High {
                        c.half_periods[0]
                    } else {
                        c.half_periods[1]
                    };
                    c.next_level = !level;
                    (c.net, level, dwell)
                };
                self.apply_change(net, level);
                self.push(self.time + dwell, EventKind::ClockTick { clock });
            }
        }
    }

    /// Applies a net transition and propagates it.
    fn apply_change(&mut self, net: NetId, value: Level) {
        if self.states[net.index()].forced {
            return; // stuck-at fault holds the net
        }
        let old = self.states[net.index()].value;
        if old == value {
            return;
        }
        self.states[net.index()].value = value;
        self.states[net.index()].last_change = self.time;
        self.stats.net_transitions += 1;
        if let Some(ProbeId(p)) = self.states[net.index()].probe {
            self.probes[p].record(self.time, value);
        }

        // Propagate through combinational fanout.
        for gi in self.fanout_gates[net.index()].clone() {
            self.evaluate_gate(gi);
        }

        // Rising clock edge triggers flip-flops. The first edge out of an
        // undefined power-up state also counts as rising.
        if value == Level::High && old != Level::High {
            for di in self.fanout_dffs[net.index()].clone() {
                self.sample_dff(di);
            }
        }
    }

    /// Settling variant of [`Self::evaluate_gate`]: schedules the output
    /// only when it evaluates to a defined level.
    fn settle_gate(&mut self, gate: GateId) {
        let (out_net, new_level, delay, jitter_sigma) = self.gate_output(gate);
        if new_level.is_defined() {
            let delay = self.noisy_delay(delay, jitter_sigma);
            self.schedule_inertial(out_net, new_level, delay);
        }
    }

    /// Evaluates a gate against current input values and schedules its
    /// output with inertial-delay semantics.
    fn evaluate_gate(&mut self, gate: GateId) {
        let (out_net, new_level, delay, jitter_sigma) = self.gate_output(gate);
        let delay = self.noisy_delay(delay, jitter_sigma);
        self.schedule_inertial(out_net, new_level, delay);
    }

    /// Computes a gate's output level and delay parameters.
    fn gate_output(&self, gate: GateId) -> (NetId, Level, Femtos, Femtos) {
        let g = &self.netlist.gates[gate.0 as usize];
        let inputs: Vec<Level> = g
            .inputs
            .iter()
            .map(|&i| self.states[i.index()].value)
            .collect();
        (g.output, g.kind.eval(&inputs), g.delay, g.jitter_sigma)
    }

    /// Draws the effective delay: nominal x PVT factor + Gaussian jitter,
    /// clamped to at least 1 fs.
    fn noisy_delay(&mut self, nominal: Femtos, jitter_sigma: Femtos) -> Femtos {
        let base = nominal.as_seconds() * self.delay_factor;
        let sigma = jitter_sigma.as_seconds() * self.jitter_factor;
        let jit = if sigma > 0.0 {
            sample_normal(&mut self.rng, sigma)
        } else {
            0.0
        };
        let total = (base + jit).max(1e-15);
        Femtos::from_seconds(total)
    }

    /// Inertial scheduling: the most recent evaluation of a net's driver
    /// wins; pulses shorter than the gate delay are swallowed.
    fn schedule_inertial(&mut self, net: NetId, value: Level, delay: Femtos) {
        let t_fire = self.time + delay;
        let st = &mut self.states[net.index()];
        if value == st.value {
            // Output re-confirms current value: cancel any in-flight pulse.
            st.pending = None;
            return;
        }
        self.token += 1;
        let token = self.token;
        st.pending = Some(Pending {
            token,
            time: t_fire,
            value,
        });
        self.push(t_fire, EventKind::NetChange { net, value, token });
    }

    /// Samples a flip-flop at a rising clock edge.
    fn sample_dff(&mut self, dff: DffId) {
        self.stats.dff_samples += 1;
        let (d_net, q_net, setup, hold, clk_to_q, meta_sigma) = {
            let d = &self.netlist.dffs[dff.0 as usize];
            (d.d, d.q, d.setup, d.hold, d.clk_to_q, d.meta_sigma)
        };
        let d_state = &self.states[d_net.index()];
        let d_value = d_state.value;
        let stable_for = self.time.saturating_sub(d_state.last_change);
        let upcoming = d_state.pending;

        let meta = MetastabilityModel::new(meta_sigma.as_seconds().max(1e-18));

        // Candidate outcomes and the time delta that decides between them.
        let (captured, metastable) = if let Some(p) = upcoming {
            let until_change = p.time.saturating_sub(self.time);
            if until_change < hold && p.value != d_value {
                // Hold violation: data changes right after the edge.
                let delta = -until_change.as_seconds();
                let new_wins = meta.resolve(delta, &mut self.rng);
                (if new_wins { p.value } else { d_value }, true)
            } else if stable_for < setup {
                self.resolve_setup(d_net, d_value, stable_for, &meta)
            } else {
                (d_value, false)
            }
        } else if stable_for < setup {
            self.resolve_setup(d_net, d_value, stable_for, &meta)
        } else {
            (d_value, false)
        };

        let mut latency = clk_to_q;
        if metastable {
            self.stats.metastable_samples += 1;
            // Metastable resolution takes extra time: exponential tail with
            // the resolution time-constant of the same order as sigma.
            let u = self.rng.uniform().max(1e-12);
            let extra = meta_sigma.as_seconds() * (-u.ln());
            latency += Femtos::from_seconds(extra);
        }
        self.schedule_inertial(q_net, captured, latency);
    }

    /// Resolves a setup-time violation: the data transitioned `stable_for`
    /// before the clock edge; the *new* value wins with probability
    /// approaching 1 as `stable_for` grows (paper Eq. 2).
    fn resolve_setup(
        &mut self,
        d_net: NetId,
        d_value: Level,
        stable_for: Femtos,
        meta: &MetastabilityModel,
    ) -> (Level, bool) {
        let _ = d_net;
        let delta = stable_for.as_seconds();
        let old_value = !d_value;
        let new_wins = meta.resolve(delta, &mut self.rng);
        let level = if new_wins { d_value } else { old_value };
        (level, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::netlist::DffSpec;

    fn ps(v: f64) -> Femtos {
        Femtos::from_ps(v)
    }

    /// Builds `stages`-inverter ring gated by a NAND enable. Returns
    /// (netlist, enable net, tap net).
    fn ring(stages: usize, stage_delay: Femtos, jitter: Femtos) -> (Netlist, NetId, NetId) {
        assert!(stages >= 2);
        let mut nl = Netlist::new();
        let en = nl.add_net("en");
        let mut nets = Vec::new();
        for i in 0..stages {
            nets.push(nl.add_net(format!("n{i}")));
        }
        // NAND(en, last) -> n0, then inverters n0 -> n1 -> ... -> last.
        nl.add_gate_jittered(
            GateKind::Nand2,
            &[en, nets[stages - 1]],
            nets[0],
            stage_delay,
            jitter,
        );
        for i in 1..stages {
            nl.add_gate_jittered(GateKind::Inv, &[nets[i - 1]], nets[i], stage_delay, jitter);
        }
        let tap = nets[stages - 1];
        (nl, en, tap)
    }

    #[test]
    fn inverter_propagates_with_delay() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Inv, &[a], b, ps(100.0));
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(1)).unwrap();
        e.drive(a, Femtos::ZERO, Level::Low);
        e.run_until(ps(500.0));
        assert_eq!(e.value(b), Level::High);
        e.drive(a, ps(600.0), Level::High);
        e.run_until(ps(650.0));
        assert_eq!(e.value(b), Level::High, "not yet propagated");
        e.run_until(ps(701.0));
        assert_eq!(e.value(b), Level::Low, "propagated after 100 ps");
    }

    #[test]
    fn x_settles_through_enable() {
        let (nl, en, tap) = ring(3, ps(350.0), Femtos::ZERO);
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(2)).unwrap();
        assert_eq!(e.value(tap), Level::Unknown);
        e.drive(en, Femtos::ZERO, Level::Low);
        e.run_until(Femtos::from_ns(5.0));
        assert!(e.value(tap).is_defined(), "enable=0 must settle the ring");
    }

    #[test]
    fn noiseless_ring_oscillates_at_2n_tstage() {
        let stage = ps(350.0);
        let (nl, en, tap) = ring(3, stage, Femtos::ZERO);
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(3)).unwrap();
        e.drive(en, Femtos::ZERO, Level::Low);
        e.drive(en, Femtos::from_ns(3.0), Level::High);
        let p = e.attach_probe(tap);
        e.run_until(Femtos::from_ns(200.0));
        let wave = e.waveform(p).unwrap();
        let period = wave.mean_period().expect("ring must oscillate");
        let expected = stage.mul_u64(6); // 2 * N * t_stage
        let err = (period.as_ps() - expected.as_ps()).abs() / expected.as_ps();
        assert!(err < 0.01, "period {} vs expected {}", period, expected);
        // Noiseless ring: zero period jitter.
        assert!(wave.period_jitter_sigma().unwrap() < 1e-15);
    }

    #[test]
    fn jittered_ring_has_period_jitter() {
        let stage = ps(350.0);
        let jitter = ps(3.0);
        let (nl, en, tap) = ring(3, stage, jitter);
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(4)).unwrap();
        e.drive(en, Femtos::ZERO, Level::Low);
        e.drive(en, Femtos::from_ns(3.0), Level::High);
        let p = e.attach_probe(tap);
        e.run_until(Femtos::from_ns(2000.0));
        let wave = e.waveform(p).unwrap();
        let sigma = wave.period_jitter_sigma().expect("oscillating");
        // Expect roughly sqrt(2 * stages) * per-stage sigma of period jitter
        // (each period crosses each stage twice, independent draws); the
        // half-period correlation of consecutive periods makes the exact
        // constant fuzzy, so assert the right order of magnitude.
        let per_stage = jitter.as_seconds();
        assert!(sigma > per_stage, "sigma {sigma} vs per-stage {per_stage}");
        assert!(sigma < 10.0 * per_stage, "sigma {sigma} too large");
    }

    #[test]
    fn delay_factor_slows_ring() {
        let stage = ps(350.0);
        let (nl, en, tap) = ring(3, stage, Femtos::ZERO);
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(5)).unwrap();
        e.set_delay_factor(1.25);
        e.drive(en, Femtos::ZERO, Level::Low);
        e.drive(en, Femtos::from_ns(3.0), Level::High);
        let p = e.attach_probe(tap);
        e.run_until(Femtos::from_ns(200.0));
        let period = e.waveform(p).unwrap().mean_period().unwrap();
        let expected_ps = 6.0 * 350.0 * 1.25;
        assert!((period.as_ps() - expected_ps).abs() / expected_ps < 0.01);
    }

    #[test]
    fn inertial_delay_swallows_short_pulse() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Buf, &[a], b, ps(200.0));
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(6)).unwrap();
        e.drive(a, Femtos::ZERO, Level::Low);
        e.run_until(ps(500.0));
        let p = e.attach_probe(b);
        // 50 ps pulse, much shorter than the 200 ps gate delay.
        e.drive(a, ps(1000.0), Level::High);
        e.drive(a, ps(1050.0), Level::Low);
        e.run_until(ps(2000.0));
        assert_eq!(
            e.waveform(p).unwrap().transition_count(),
            0,
            "short pulse must be swallowed"
        );
        // A long pulse passes.
        e.drive(a, ps(3000.0), Level::High);
        e.drive(a, ps(3500.0), Level::Low);
        e.run_until(ps(5000.0));
        assert_eq!(e.waveform(p).unwrap().transition_count(), 2);
    }

    #[test]
    fn clock_generator_period_and_duty() {
        let mut nl = Netlist::new();
        let clk = nl.add_net("clk");
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(7)).unwrap();
        e.add_clock(clk, ps(100.0), ps(300.0), ps(700.0));
        let p = e.attach_probe(clk);
        e.run_until(Femtos::from_ns(20.0));
        let wave = e.waveform(p).unwrap();
        let period = wave.mean_period().unwrap();
        assert_eq!(period, Femtos::from_ps(1000.0));
        let duty = wave.duty_cycle(Femtos::from_ns(20.0));
        assert!((duty - 0.3).abs() < 0.02, "duty = {duty}");
    }

    #[test]
    fn dff_captures_stable_data() {
        let mut nl = Netlist::new();
        let d = nl.add_net("d");
        let clk = nl.add_net("clk");
        let q = nl.add_net("q");
        nl.add_dff(DffSpec::fpga(d, clk, q));
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(8)).unwrap();
        e.drive(d, Femtos::ZERO, Level::High);
        e.add_clock_50(clk, Femtos::from_ns(1.0), Femtos::from_ns(2.0));
        e.run_until(Femtos::from_ns(1.5));
        assert_eq!(e.value(q), Level::High, "Q follows D after clock edge");
        e.drive(d, Femtos::from_ns(1.6), Level::Low);
        e.run_until(Femtos::from_ns(3.5));
        assert_eq!(e.value(q), Level::Low);
        assert_eq!(e.stats().metastable_samples, 0);
    }

    #[test]
    fn dff_is_metastable_on_simultaneous_edge() {
        // Drive D to flip exactly at each clock edge: every sample violates
        // setup, and outcomes must be split roughly 50/50.
        let mut ones = 0u32;
        let trials = 400;
        for seed in 0..trials {
            let mut nl = Netlist::new();
            let d = nl.add_net("d");
            let clk = nl.add_net("clk");
            let q = nl.add_net("q");
            nl.add_dff(DffSpec::fpga(d, clk, q));
            let mut e = Engine::new(nl, NoiseRng::seed_from_u64(1000 + seed)).unwrap();
            e.drive(d, Femtos::ZERO, Level::Low);
            // Data rises exactly at the sampling edge.
            e.drive(d, Femtos::from_ns(5.0), Level::High);
            e.drive(clk, Femtos::ZERO, Level::Low);
            e.drive(clk, Femtos::from_ns(5.0), Level::High);
            e.run_until(Femtos::from_ns(8.0));
            assert_eq!(e.stats().metastable_samples, 1);
            if e.value(q) == Level::High {
                ones += 1;
            }
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.1, "metastable split = {frac}");
    }

    #[test]
    fn dff_hold_violation_keeps_old_value_mostly() {
        // Data changes 2 ps *after* the edge (inside the 10 ps hold
        // window): the old value should win nearly always.
        let mut old_wins = 0u32;
        let trials = 200;
        for seed in 0..trials {
            let mut nl = Netlist::new();
            let a = nl.add_net("a");
            let d = nl.add_net("d");
            let clk = nl.add_net("clk");
            let q = nl.add_net("q");
            // Buffer so the change arrives as a *pending* event.
            nl.add_gate(GateKind::Buf, &[a], d, ps(100.0));
            nl.add_dff(DffSpec::fpga(d, clk, q));
            let mut e = Engine::new(nl, NoiseRng::seed_from_u64(2000 + seed)).unwrap();
            e.drive(a, Femtos::ZERO, Level::Low);
            e.run_until(Femtos::from_ns(1.0));
            // Time the stimulus so the pending d edge lands 8 ps after
            // the 5 ns clock edge, inside the 10 ps hold window.
            e.drive(a, Femtos::from_ns(5.0) - ps(92.0), Level::High);
            e.drive(clk, Femtos::ZERO, Level::Low);
            e.drive(clk, Femtos::from_ns(5.0), Level::High);
            e.run_until(Femtos::from_ns(8.0));
            if e.value(q) == Level::Low {
                old_wins += 1;
            }
        }
        let frac = old_wins as f64 / trials as f64;
        assert!(frac > 0.55, "old value should usually win, got {frac}");
    }

    #[test]
    fn deterministic_replay() {
        let (nl, en, tap) = ring(5, ps(300.0), ps(2.0));
        let run = |seed: u64| {
            let mut e = Engine::new(nl.clone(), NoiseRng::seed_from_u64(seed)).unwrap();
            e.drive(en, Femtos::ZERO, Level::Low);
            e.drive(en, Femtos::from_ns(2.0), Level::High);
            let p = e.attach_probe(tap);
            e.run_until(Femtos::from_ns(500.0));
            e.waveform(p)
                .unwrap()
                .rising_edges()
                .map(Femtos::as_fs)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_guards_runaway_rings() {
        let (nl, en, _tap) = ring(3, ps(350.0), Femtos::ZERO);
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(30)).unwrap();
        e.set_event_limit(100);
        e.drive(en, Femtos::ZERO, Level::Low);
        e.drive(en, Femtos::from_ns(2.0), Level::High);
        e.run_until(Femtos::from_ns(10_000.0));
    }

    #[test]
    fn stats_count_work() {
        let (nl, en, tap) = ring(3, ps(350.0), Femtos::ZERO);
        let _ = tap;
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(10)).unwrap();
        e.drive(en, Femtos::ZERO, Level::Low);
        e.drive(en, Femtos::from_ns(2.0), Level::High);
        e.run_until(Femtos::from_ns(100.0));
        let s = e.stats();
        assert!(s.events > 100);
        assert!(s.net_transitions > 100);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::gate::GateKind;

    #[test]
    fn stuck_fault_freezes_a_ring() {
        let mut nl = Netlist::new();
        let en = nl.add_net("en");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        nl.add_gate(GateKind::Nand2, &[en, c], a, Femtos::from_ps(300.0));
        nl.add_gate(GateKind::Inv, &[a], b, Femtos::from_ps(300.0));
        nl.add_gate(GateKind::Inv, &[b], c, Femtos::from_ps(300.0));
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(1)).unwrap();
        e.drive(en, Femtos::ZERO, Level::Low);
        e.drive(en, Femtos::from_ns(2.0), Level::High);
        e.run_until(Femtos::from_ns(50.0));
        let probe = e.attach_probe(c);
        // Kill the ring mid-flight.
        e.inject_stuck(b, Level::Low);
        e.run_until(Femtos::from_ns(100.0));
        let frozen = e.waveform(probe).unwrap().transition_count();
        assert!(frozen <= 1, "ring must die after the fault: {frozen}");
        // Release: the ring recovers.
        e.release_stuck(b);
        e.run_until(Femtos::from_ns(200.0));
        let after = e.waveform(probe).unwrap().transition_count();
        assert!(after > frozen + 20, "ring must recover: {after}");
    }

    #[test]
    fn stuck_value_is_visible_immediately() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(GateKind::Buf, &[a], b, Femtos::from_ps(100.0));
        let mut e = Engine::new(nl, NoiseRng::seed_from_u64(2)).unwrap();
        e.inject_stuck(b, Level::High);
        assert_eq!(e.value(b), Level::High);
        // Driver events cannot move it.
        e.drive(a, Femtos::from_ps(10.0), Level::Low);
        e.run_until(Femtos::from_ns(1.0));
        assert_eq!(e.value(b), Level::High);
    }
}
