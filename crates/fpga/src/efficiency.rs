//! The paper's headline comparison metric.
//!
//! Table 6 and Figure 1(b) rank TRNGs by `Throughput / (Slices x Power)`
//! (Mbps per slice-watt). The paper's design reaches 1139.7 on Artix-7,
//! a 2.63x improvement over the prior best (432.97, DAC'23).

/// Computes `throughput_mbps / (slices x power_w)`.
///
/// # Panics
///
/// Panics if `slices` is zero or `power_w` is not strictly positive.
///
/// # Example
///
/// ```
/// use dhtrng_fpga::efficiency_metric;
///
/// // The paper's Table 6 row for this work: 620 Mbps, 8 slices, 0.068 W.
/// let e = efficiency_metric(620.0, 8, 0.068);
/// assert!((e - 1139.7).abs() < 0.1);
/// ```
pub fn efficiency_metric(throughput_mbps: f64, slices: u32, power_w: f64) -> f64 {
    assert!(slices > 0, "slices must be non-zero");
    assert!(
        power_w.is_finite() && power_w > 0.0,
        "power must be positive, got {power_w}"
    );
    throughput_mbps / (f64::from(slices) * power_w)
}

/// The x-coordinate of Figure 1(b): `1 / (slices x power_w)`.
pub fn inverse_slice_power(slices: u32, power_w: f64) -> f64 {
    assert!(slices > 0, "slices must be non-zero");
    assert!(power_w > 0.0, "power must be positive");
    1.0 / (f64::from(slices) * power_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_reproduce() {
        // Table 6: (design, slices, Mbps, W, metric).
        let rows = [
            (10u32, 1.91, 0.043, 4.44),
            (1, 0.76, 0.025, 30.40),
            (18, 100.0, 0.068, 81.70),
            (33, 12.5, 0.063, 6.01),
            (38, 300.0, 0.119, 66.34),
            (40, 1.25, 0.023, 1.36),
            (13, 275.8, 0.049, 432.97),
            (8, 620.0, 0.068, 1139.7),
        ];
        for (slices, mbps, w, expected) in rows {
            let e = efficiency_metric(mbps, slices, w);
            assert!(
                (e - expected).abs() / expected < 0.01,
                "{slices} slices {mbps} Mbps {w} W: {e} vs {expected}"
            );
        }
    }

    #[test]
    fn this_work_improves_2_63x_over_prior_best() {
        let prior = efficiency_metric(275.8, 13, 0.049);
        let ours = efficiency_metric(620.0, 8, 0.068);
        let gain = ours / prior;
        assert!((gain - 2.63).abs() < 0.01, "gain = {gain}");
    }

    #[test]
    fn figure_1b_x_axis() {
        let x = inverse_slice_power(8, 0.068);
        assert!((x - 1.838).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "slices must be non-zero")]
    fn zero_slices_panics() {
        let _ = efficiency_metric(1.0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_power_panics() {
        let _ = efficiency_metric(1.0, 1, 0.0);
    }
}
