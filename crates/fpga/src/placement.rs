//! Compact square slice placement (paper Figure 5(b)).
//!
//! The paper constrains the implementation to a compact square slice array
//! anchored at an origin slice, with cells grouped by type. This module
//! models that placement: region-labelled slices on an integer grid, a
//! square-ish arrangement generator, and the contiguity/bounding-box
//! checks the tests use to validate "compactness".

/// Grid coordinate of one slice.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceCoord {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl SliceCoord {
    /// Creates a coordinate.
    pub fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another slice.
    pub fn manhattan(&self, other: &SliceCoord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl std::fmt::Display for SliceCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SLICE_X{}Y{}", self.x, self.y)
    }
}

/// A placed slice with its region label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedSlice {
    /// Location on the grid.
    pub coord: SliceCoord,
    /// The region occupying the slice.
    pub region: String,
}

/// A compact placement of a packed design.
///
/// # Example
///
/// ```
/// use dhtrng_fpga::Placement;
///
/// // The paper's 8 slices: 5 entropy + 2 sampling + 1 feedback.
/// let p = Placement::compact_square(&[("entropy", 5), ("sampling", 2), ("feedback", 1)],
///                                   (10, 20));
/// assert_eq!(p.slice_count(), 8);
/// // 8 slices pack into a 3x3 bounding box.
/// let (w, h) = p.bounding_box();
/// assert!(w <= 3 && h <= 3);
/// assert!(p.is_contiguous());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    origin: SliceCoord,
    slices: Vec<PlacedSlice>,
}

impl Placement {
    /// Places regions row-major into the smallest square-ish grid that
    /// holds them, anchored at `origin` (the paper's "coordinates of the
    /// origin slice").
    ///
    /// # Panics
    ///
    /// Panics if no slices are requested.
    pub fn compact_square(regions: &[(&str, u32)], origin: (u32, u32)) -> Self {
        let total: u32 = regions.iter().map(|&(_, n)| n).sum();
        assert!(total > 0, "placement needs at least one slice");
        let side = (f64::from(total)).sqrt().ceil() as u32;
        let origin = SliceCoord::new(origin.0, origin.1);
        let mut slices = Vec::with_capacity(total as usize);
        let mut idx = 0u32;
        for &(name, count) in regions {
            for _ in 0..count {
                let coord = SliceCoord::new(origin.x + idx % side, origin.y + idx / side);
                slices.push(PlacedSlice {
                    coord,
                    region: name.to_string(),
                });
                idx += 1;
            }
        }
        Self { origin, slices }
    }

    /// The anchor slice.
    pub fn origin(&self) -> SliceCoord {
        self.origin
    }

    /// Number of placed slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// All placed slices.
    pub fn slices(&self) -> &[PlacedSlice] {
        &self.slices
    }

    /// Width and height of the bounding box.
    pub fn bounding_box(&self) -> (u32, u32) {
        let min_x = self.slices.iter().map(|s| s.coord.x).min().unwrap_or(0);
        let max_x = self.slices.iter().map(|s| s.coord.x).max().unwrap_or(0);
        let min_y = self.slices.iter().map(|s| s.coord.y).min().unwrap_or(0);
        let max_y = self.slices.iter().map(|s| s.coord.y).max().unwrap_or(0);
        (max_x - min_x + 1, max_y - min_y + 1)
    }

    /// Fraction of the bounding box actually occupied.
    pub fn utilization(&self) -> f64 {
        let (w, h) = self.bounding_box();
        self.slice_count() as f64 / f64::from(w * h)
    }

    /// Whether every slice has a 4-neighbour within the placement (all
    /// slices form one connected block).
    pub fn is_contiguous(&self) -> bool {
        if self.slices.is_empty() {
            return true;
        }
        let coords: std::collections::HashSet<SliceCoord> =
            self.slices.iter().map(|s| s.coord).collect();
        // Flood fill from the first slice.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.slices[0].coord];
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            let neighbours = [
                (c.x.wrapping_sub(1), c.y),
                (c.x + 1, c.y),
                (c.x, c.y.wrapping_sub(1)),
                (c.x, c.y + 1),
            ];
            for (nx, ny) in neighbours {
                let n = SliceCoord::new(nx, ny);
                if coords.contains(&n) && !seen.contains(&n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == coords.len()
    }

    /// ASCII rendering of the placement grid, one letter per region (first
    /// letter of the region name), `.` for empty cells — a terminal
    /// stand-in for the paper's Figure 5(b).
    pub fn render(&self) -> String {
        if self.slices.is_empty() {
            return String::new();
        }
        let min_x = self.slices.iter().map(|s| s.coord.x).min().unwrap();
        let min_y = self.slices.iter().map(|s| s.coord.y).min().unwrap();
        let (w, h) = self.bounding_box();
        let mut grid = vec![vec!['.'; w as usize]; h as usize];
        for s in &self.slices {
            let ch = s.region.chars().next().unwrap_or('?').to_ascii_uppercase();
            grid[(s.coord.y - min_y) as usize][(s.coord.x - min_x) as usize] = ch;
        }
        grid.into_iter()
            .rev() // y grows upward on FPGA floorplans
            .map(|row| row.into_iter().collect::<String>())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dh() -> Placement {
        Placement::compact_square(&[("entropy", 5), ("sampling", 2), ("feedback", 1)], (4, 8))
    }

    #[test]
    fn eight_slices_fit_a_3x3_block() {
        let p = dh();
        assert_eq!(p.slice_count(), 8);
        let (w, h) = p.bounding_box();
        assert!(w <= 3 && h <= 3, "bbox {w}x{h}");
        assert!(p.utilization() > 0.85);
        assert!(p.is_contiguous());
    }

    #[test]
    fn origin_is_respected() {
        let p = dh();
        assert_eq!(p.origin(), SliceCoord::new(4, 8));
        assert!(p.slices().iter().all(|s| s.coord.x >= 4 && s.coord.y >= 8));
    }

    #[test]
    fn coordinates_are_xilinx_style() {
        assert_eq!(SliceCoord::new(4, 8).to_string(), "SLICE_X4Y8");
    }

    #[test]
    fn manhattan_distance() {
        let a = SliceCoord::new(1, 1);
        let b = SliceCoord::new(4, 3);
        assert_eq!(a.manhattan(&b), 5);
        assert_eq!(b.manhattan(&a), 5);
    }

    #[test]
    fn render_shows_regions() {
        let art = dh().render();
        // 5 E's, 2 S's, 1 F over a 3x3 grid (one '.' filler).
        assert_eq!(art.matches('E').count(), 5);
        assert_eq!(art.matches('S').count(), 2);
        assert_eq!(art.matches('F').count(), 1);
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    fn single_slice_is_contiguous() {
        let p = Placement::compact_square(&[("x", 1)], (0, 0));
        assert!(p.is_contiguous());
        assert_eq!(p.bounding_box(), (1, 1));
        assert!((p.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn empty_placement_panics() {
        let _ = Placement::compact_square(&[], (0, 0));
    }
}
