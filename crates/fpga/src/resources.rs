//! FPGA resource accounting.
//!
//! [`ResourceReport`] is the common currency of the Table 6 comparison:
//! LUTs, slice MUXes and DFFs, with slice counts derived by the packer.

use std::iter::Sum;
use std::ops::Add;

/// Cell-level resource usage of a design or a region of one.
///
/// # Example
///
/// ```
/// use dhtrng_fpga::ResourceReport;
///
/// let entropy = ResourceReport::new(20, 4, 0);
/// let sampling = ResourceReport::new(3, 0, 14);
/// let total = entropy + sampling;
/// assert_eq!(total, ResourceReport::new(23, 4, 14)); // the paper's count
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResourceReport {
    /// Six-input LUTs.
    pub luts: u32,
    /// Dedicated slice MUXes (F7/F8).
    pub muxes: u32,
    /// Flip-flops.
    pub dffs: u32,
}

impl ResourceReport {
    /// Creates a report.
    pub fn new(luts: u32, muxes: u32, dffs: u32) -> Self {
        Self { luts, muxes, dffs }
    }

    /// A zero report.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Whether the report is all-zero.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Total cell count (LUTs + MUXes + DFFs).
    pub fn total_cells(&self) -> u32 {
        self.luts + self.muxes + self.dffs
    }
}

impl Add for ResourceReport {
    type Output = ResourceReport;
    fn add(self, rhs: ResourceReport) -> ResourceReport {
        ResourceReport {
            luts: self.luts + rhs.luts,
            muxes: self.muxes + rhs.muxes,
            dffs: self.dffs + rhs.dffs,
        }
    }
}

impl Sum for ResourceReport {
    fn sum<I: Iterator<Item = ResourceReport>>(iter: I) -> ResourceReport {
        iter.fold(ResourceReport::default(), Add::add)
    }
}

impl std::fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} LUTs, {} MUXes, {} DFFs",
            self.luts, self.muxes, self.dffs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum() {
        let a = ResourceReport::new(1, 2, 3);
        let b = ResourceReport::new(10, 20, 30);
        assert_eq!(a + b, ResourceReport::new(11, 22, 33));
        let s: ResourceReport = [a, b, a].into_iter().sum();
        assert_eq!(s, ResourceReport::new(12, 24, 36));
    }

    #[test]
    fn totals_and_emptiness() {
        assert!(ResourceReport::zero().is_empty());
        let r = ResourceReport::new(23, 4, 14);
        assert!(!r.is_empty());
        assert_eq!(r.total_cells(), 41);
    }

    #[test]
    fn display() {
        let r = ResourceReport::new(23, 4, 14);
        assert_eq!(r.to_string(), "23 LUTs, 4 MUXes, 14 DFFs");
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_traits_are_implemented() {
        fn assert_ser<T: serde::Serialize>() {}
        fn assert_de<T: serde::de::DeserializeOwned>() {}
        assert_ser::<ResourceReport>();
        assert_de::<ResourceReport>();
        assert_ser::<crate::PowerBreakdown>();
        assert_de::<crate::SliceCoord>();
    }
}
