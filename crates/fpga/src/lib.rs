//! FPGA platform models for the DH-TRNG reproduction.
//!
//! The paper evaluates its TRNG on two Xilinx devices — Virtex-6
//! `xc6vlx240t` (45 nm) and Artix-7 `xc7a100t` (28 nm) — and reports four
//! platform-level quantities per design (Table 6): LUT/DFF/slice resource
//! usage, throughput, power, and the headline efficiency metric
//! `Throughput / (Slices × Power)`.
//!
//! Since no silicon is available to a software reproduction, this crate
//! provides calibrated analytic models of exactly those quantities:
//!
//! * [`Device`] — per-device delay, resource and power constants;
//! * [`ResourceReport`] + [`pack_design`](packer::pack_design) — slice
//!   packing with the paper's typed-placement constraints (Fig. 5(b)),
//!   reproducing the 8-slice result for 23 LUTs + 4 MUXes + 14 DFFs;
//! * [`Placement`] — the compact square slice array of Fig. 5(b);
//! * [`timing`] — critical-path model giving the maximum sampling clock
//!   (670 Mbps on Virtex-6 / 620 Mbps on Artix-7 for the DH-TRNG path);
//! * [`power`] — leakage + CV²f dynamic power;
//! * [`efficiency`] — the comparison metric of Table 6 / Figure 1(b).
//!
//! # Example
//!
//! ```
//! use dhtrng_fpga::{Device, ResourceReport};
//! use dhtrng_fpga::packer::{pack_design, Region};
//!
//! let device = Device::artix7();
//! // The paper's resource count: 23 LUTs, 4 MUXes, 14 DFFs -> 8 slices.
//! let regions = Region::dh_trng_reference();
//! let packed = pack_design(&regions, device.slice_spec());
//! assert_eq!(packed.total_slices, 8);
//! let totals: ResourceReport = regions.iter().map(Region::resources).sum();
//! assert_eq!((totals.luts, totals.muxes, totals.dffs), (23, 4, 14));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod efficiency;
pub mod packer;
pub mod placement;
pub mod power;
pub mod resources;
pub mod timing;

pub use device::{Device, Family, SliceSpec};
pub use efficiency::efficiency_metric;
pub use placement::{Placement, SliceCoord};
pub use power::{ActivityProfile, PowerBreakdown, PowerModel};
pub use resources::ResourceReport;
pub use timing::TimingModel;
