//! Critical-path timing model.
//!
//! The DH-TRNG produces one bit per sampling-clock cycle (paper §3.3), so
//! throughput equals the maximum sampling frequency. The limiting path in
//! the sampling array runs from a sampling flip-flop through the XOR tree
//! to the output flip-flop:
//!
//! ```text
//! T_min = clk_to_q + levels x (LUT + net) + setup
//! ```
//!
//! With the calibrated device constants this reproduces the paper's
//! operating points: 670 MHz on Virtex-6 and 620 MHz on Artix-7 (§4,
//! Table 6).

use dhtrng_noise::pvt::PvtCorner;

use crate::device::Device;

/// XOR-tree depth of the DH-TRNG sampling array: 12 sampled bits reduce
/// through two levels of 6-input LUTs plus the final 2-input stage folded
/// into the second level — 2 logic levels on the register-to-register
/// path.
pub const DH_TRNG_LOGIC_LEVELS: u32 = 2;

/// Critical-path timing model for register-to-register paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingModel;

impl TimingModel {
    /// Minimum clock period for a path with `levels` LUT+net hops on the
    /// given device at the given corner, in seconds.
    pub fn min_period_s(device: &Device, levels: u32, corner: PvtCorner) -> f64 {
        let f = device.process.factors(corner);
        (device.clk_to_q_s
            + f64::from(levels) * (device.lut_delay_s + device.net_delay_s)
            + device.setup_s)
            * f.delay
    }

    /// Maximum sampling frequency in Hz (clamped by the device PLL).
    pub fn max_frequency_hz(device: &Device, levels: u32, corner: PvtCorner) -> f64 {
        (1.0 / Self::min_period_s(device, levels, corner)).min(device.pll_max_hz)
    }

    /// Throughput in Mbps for a design emitting `bits_per_cycle` bits per
    /// sampling clock.
    pub fn throughput_mbps(
        device: &Device,
        levels: u32,
        bits_per_cycle: f64,
        corner: PvtCorner,
    ) -> f64 {
        Self::max_frequency_hz(device, levels, corner) * bits_per_cycle / 1e6
    }

    /// The DH-TRNG operating point: 1 bit/cycle through the 2-level
    /// sampling path, at the nominal corner.
    pub fn dh_trng_throughput_mbps(device: &Device) -> f64 {
        Self::throughput_mbps(device, DH_TRNG_LOGIC_LEVELS, 1.0, PvtCorner::nominal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex6_hits_670_mbps() {
        let t = TimingModel::dh_trng_throughput_mbps(&Device::virtex6());
        assert!(
            (t - 670.0).abs() / 670.0 < 0.02,
            "Virtex-6 throughput {t:.1} Mbps vs paper 670"
        );
    }

    #[test]
    fn artix7_hits_620_mbps() {
        let t = TimingModel::dh_trng_throughput_mbps(&Device::artix7());
        assert!(
            (t - 620.0).abs() / 620.0 < 0.02,
            "Artix-7 throughput {t:.1} Mbps vs paper 620"
        );
    }

    #[test]
    fn more_levels_lower_frequency() {
        let d = Device::artix7();
        let c = PvtCorner::nominal();
        let f2 = TimingModel::max_frequency_hz(&d, 2, c);
        let f4 = TimingModel::max_frequency_hz(&d, 4, c);
        assert!(f4 < f2);
    }

    #[test]
    fn slow_corner_lowers_frequency() {
        let d = Device::virtex6();
        let nominal = TimingModel::max_frequency_hz(&d, 2, PvtCorner::nominal());
        let slow = TimingModel::max_frequency_hz(&d, 2, PvtCorner::new(80.0, 0.8));
        assert!(slow < nominal, "slow corner must reduce fmax");
    }

    #[test]
    fn pll_clamps_zero_level_paths() {
        let d = Device::artix7();
        let f = TimingModel::max_frequency_hz(&d, 0, PvtCorner::nominal());
        assert!(f <= d.pll_max_hz);
    }

    #[test]
    fn throughput_scales_with_bits_per_cycle() {
        let d = Device::artix7();
        let c = PvtCorner::nominal();
        let one = TimingModel::throughput_mbps(&d, 2, 1.0, c);
        let two = TimingModel::throughput_mbps(&d, 2, 2.0, c);
        assert!((two / one - 2.0).abs() < 1e-9);
    }
}
