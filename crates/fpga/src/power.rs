//! Power model: leakage plus CV²f switching power.
//!
//! Table 6 of the paper compares designs by measured on-device power.
//! Without silicon we model design-attributable power as
//!
//! ```text
//! P = P_static x leakage(T, V)  +  1/2 x C_eff x V^2 x sum(nodes x rate)
//! ```
//!
//! where the activity profile lists how many circuit nodes toggle at which
//! rate (ring nodes at ring frequency, sampler nodes at the sampling
//! clock). `C_eff` and `P_static` are per-device calibrations (see
//! [`crate::device`]).

use dhtrng_noise::pvt::PvtCorner;

use crate::device::Device;

/// Switching-activity description: groups of nodes and their toggle rates.
///
/// # Example
///
/// ```
/// use dhtrng_fpga::ActivityProfile;
///
/// let mut a = ActivityProfile::new();
/// a.add(12, 2.0 * 290.0e6);  // 12 ring nodes toggling at 2x290 MHz
/// a.add(17, 620.0e6);        // 17 sampler nodes at the sampling clock
/// assert!(a.total_toggle_rate_hz() > 1.0e9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivityProfile {
    groups: Vec<(u32, f64)>,
}

impl ActivityProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a group of `nodes` nodes toggling `rate_hz` times per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is negative or not finite.
    pub fn add(&mut self, nodes: u32, rate_hz: f64) -> &mut Self {
        assert!(
            rate_hz.is_finite() && rate_hz >= 0.0,
            "toggle rate must be finite and >= 0, got {rate_hz}"
        );
        self.groups.push((nodes, rate_hz));
        self
    }

    /// Sum over groups of `nodes x rate`, in transitions per second.
    pub fn total_toggle_rate_hz(&self) -> f64 {
        self.groups.iter().map(|&(n, r)| f64::from(n) * r).sum()
    }

    /// Number of node groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

/// Computed power split.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Leakage component in watts.
    pub static_w: f64,
    /// Switching component in watts.
    pub dynamic_w: f64,
}

impl PowerBreakdown {
    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.static_w + self.dynamic_w
    }
}

impl std::fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} W ({:.3} static + {:.3} dynamic)",
            self.total_w(),
            self.static_w,
            self.dynamic_w
        )
    }
}

/// The power model over a device's calibration constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PowerModel;

impl PowerModel {
    /// Computes the power of a design with the given switching activity on
    /// `device` at `corner`.
    pub fn power(device: &Device, activity: &ActivityProfile, corner: PvtCorner) -> PowerBreakdown {
        let f = device.process.factors(corner);
        let static_w = device.static_power_w * f.leakage;
        let dynamic_w =
            0.5 * device.c_eff_f * corner.vdd_v * corner.vdd_v * activity.total_toggle_rate_hz();
        PowerBreakdown {
            static_w,
            dynamic_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ActivityProfile {
        let mut a = ActivityProfile::new();
        a.add(12, 580.0e6).add(8, 860.0e6).add(17, 670.0e6);
        a
    }

    #[test]
    fn toggle_rate_sums_groups() {
        let a = profile();
        let expected = 12.0 * 580.0e6 + 8.0 * 860.0e6 + 17.0 * 670.0e6;
        assert!((a.total_toggle_rate_hz() - expected).abs() < 1.0);
        assert_eq!(a.group_count(), 3);
    }

    #[test]
    fn nominal_power_is_static_plus_dynamic() {
        let d = Device::virtex6();
        let p = PowerModel::power(&d, &profile(), PvtCorner::nominal());
        assert!((p.static_w - d.static_power_w).abs() < 1e-12);
        assert!(p.dynamic_w > 0.0);
        assert!((p.total_w() - (p.static_w + p.dynamic_w)).abs() < 1e-15);
    }

    #[test]
    fn voltage_scaling_is_quadratic_for_dynamic() {
        let d = Device::artix7();
        let low = PowerModel::power(&d, &profile(), PvtCorner::new(20.0, 0.8));
        let nom = PowerModel::power(&d, &profile(), PvtCorner::nominal());
        let ratio = low.dynamic_w / nom.dynamic_w;
        assert!((ratio - 0.64).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn hot_corner_leaks_more() {
        let d = Device::virtex6();
        let hot = PowerModel::power(&d, &profile(), PvtCorner::new(80.0, 1.0));
        let nom = PowerModel::power(&d, &profile(), PvtCorner::nominal());
        assert!(hot.static_w > 2.0 * nom.static_w);
    }

    #[test]
    fn idle_design_burns_only_leakage() {
        let d = Device::artix7();
        let p = PowerModel::power(&d, &ActivityProfile::new(), PvtCorner::nominal());
        assert_eq!(p.dynamic_w, 0.0);
        assert!(p.static_w > 0.0);
    }

    #[test]
    fn display_formats_watts() {
        let p = PowerBreakdown {
            static_w: 0.03,
            dynamic_w: 0.038,
        };
        assert_eq!(p.to_string(), "0.068 W (0.030 static + 0.038 dynamic)");
    }

    #[test]
    #[should_panic(expected = "toggle rate")]
    fn negative_rate_panics() {
        let mut a = ActivityProfile::new();
        a.add(1, -1.0);
    }
}
