//! Device descriptions for the paper's two evaluation FPGAs.
//!
//! All timing/power constants are *model calibrations*, chosen so that the
//! DH-TRNG reference design reproduces the paper's operating points
//! (§4/Table 6): 670 Mbps @ 0.126 W on Virtex-6 and 620 Mbps @ 0.068 W on
//! Artix-7. They sit inside the plausible envelope for the respective
//! speed grades; see `DESIGN.md` §4 for the calibration notes.

use dhtrng_noise::pvt::ProcessParams;

/// FPGA family of a [`Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Xilinx Virtex-6 (45 nm).
    Virtex6,
    /// Xilinx Artix-7 (28 nm).
    Artix7,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::Virtex6 => write!(f, "Virtex-6"),
            Family::Artix7 => write!(f, "Artix-7"),
        }
    }
}

/// Capacity of one slice (the packing unit of Xilinx 6/7-series parts).
///
/// The paper (§3.3): "one slice in Xilinx 6 serials or 7 serials FPGA
/// contains four six-input LUTs, three MUXs, eight DFFs".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSpec {
    /// Six-input LUTs per slice.
    pub luts: u32,
    /// Wide-function MUXes per slice (F7A/F7B/F8).
    pub muxes: u32,
    /// Flip-flops per slice.
    pub dffs: u32,
    /// MUXes usable per slice under the paired-LUT (F7) constraint the
    /// paper's typed placement imposes.
    pub paired_muxes: u32,
}

impl SliceSpec {
    /// Xilinx 6/7-series slice: 4 LUT6, 3 MUX (2 pairable F7), 8 DFF.
    pub fn xilinx_6_7_series() -> Self {
        Self {
            luts: 4,
            muxes: 3,
            dffs: 8,
            paired_muxes: 2,
        }
    }
}

impl Default for SliceSpec {
    fn default() -> Self {
        Self::xilinx_6_7_series()
    }
}

/// One of the paper's evaluation devices, with the calibrated timing and
/// power constants the platform models need.
///
/// # Example
///
/// ```
/// use dhtrng_fpga::Device;
///
/// let v6 = Device::virtex6();
/// let a7 = Device::artix7();
/// assert!(v6.process.nm > a7.process.nm);
/// // Per-stage (LUT + local route) delay is under a nanosecond on both.
/// assert!(v6.stage_delay_s() < 1.0e-9 && a7.stage_delay_s() < 1.0e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Family (Virtex-6 / Artix-7).
    pub family: Family,
    /// Part number, e.g. `xc6vlx240t`.
    pub part: &'static str,
    /// Process parameters (feeds the PVT model).
    pub process: ProcessParams,
    /// LUT propagation delay in seconds (nominal corner).
    pub lut_delay_s: f64,
    /// Local net (routing) delay in seconds (nominal corner).
    pub net_delay_s: f64,
    /// Flip-flop clock-to-Q delay in seconds.
    pub clk_to_q_s: f64,
    /// Flip-flop setup time in seconds.
    pub setup_s: f64,
    /// Maximum PLL output frequency in Hz.
    pub pll_max_hz: f64,
    /// Design-attributable static power at the nominal corner, in watts.
    pub static_power_w: f64,
    /// Effective switched capacitance per node, in farads.
    pub c_eff_f: f64,
    slice: SliceSpec,
}

impl Device {
    /// Xilinx Virtex-6 `xc6vlx240t` (45 nm), the paper's first board.
    pub fn virtex6() -> Self {
        Self {
            family: Family::Virtex6,
            part: "xc6vlx240t",
            process: ProcessParams::nm45(),
            lut_delay_s: 0.240e-9,
            net_delay_s: 0.336e-9,
            clk_to_q_s: 0.300e-9,
            setup_s: 0.040e-9,
            pll_max_hz: 1.40e9,
            static_power_w: 0.080,
            c_eff_f: 3.1e-12,
            slice: SliceSpec::xilinx_6_7_series(),
        }
    }

    /// Xilinx Artix-7 `xc7a100t` (28 nm), the paper's second board.
    pub fn artix7() -> Self {
        Self {
            family: Family::Artix7,
            part: "xc7a100t",
            process: ProcessParams::nm28(),
            lut_delay_s: 0.260e-9,
            net_delay_s: 0.347e-9,
            clk_to_q_s: 0.350e-9,
            setup_s: 0.050e-9,
            pll_max_hz: 1.25e9,
            static_power_w: 0.030,
            c_eff_f: 2.7e-12,
            slice: SliceSpec::xilinx_6_7_series(),
        }
    }

    /// Both evaluation devices, Virtex-6 first (paper order).
    pub fn paper_devices() -> [Device; 2] {
        [Device::virtex6(), Device::artix7()]
    }

    /// Per-stage delay of a LUT-based ring: LUT + local route.
    pub fn stage_delay_s(&self) -> f64 {
        self.lut_delay_s + self.net_delay_s
    }

    /// The slice capacity used for packing.
    pub fn slice_spec(&self) -> SliceSpec {
        self.slice
    }

    /// Short display name, e.g. `Virtex-6 (xc6vlx240t)`.
    pub fn display_name(&self) -> String {
        format!("{} ({})", self.family, self.part)
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_identify_correctly() {
        let v6 = Device::virtex6();
        assert_eq!(v6.family, Family::Virtex6);
        assert_eq!(v6.part, "xc6vlx240t");
        assert_eq!(v6.process.nm, 45);
        let a7 = Device::artix7();
        assert_eq!(a7.family, Family::Artix7);
        assert_eq!(a7.part, "xc7a100t");
        assert_eq!(a7.process.nm, 28);
    }

    #[test]
    fn stage_delays_in_plausible_band() {
        for d in Device::paper_devices() {
            let s = d.stage_delay_s();
            assert!(s > 0.3e-9 && s < 0.9e-9, "{}: {s}", d);
        }
    }

    #[test]
    fn slice_spec_matches_paper_description() {
        let s = SliceSpec::xilinx_6_7_series();
        assert_eq!((s.luts, s.muxes, s.dffs), (4, 3, 8));
    }

    #[test]
    fn display_names() {
        assert_eq!(Device::virtex6().to_string(), "Virtex-6 (xc6vlx240t)");
        assert_eq!(Device::artix7().to_string(), "Artix-7 (xc7a100t)");
    }

    #[test]
    fn artix_burns_less_static_power() {
        // 28 nm low-cost part vs 45 nm high-end part, as in the paper's
        // 0.126 W vs 0.068 W split.
        assert!(Device::artix7().static_power_w < Device::virtex6().static_power_w);
    }
}
