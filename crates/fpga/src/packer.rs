//! Slice packing under the paper's typed-placement constraints.
//!
//! The paper (§3.3) constrains "all gate cells by type to an appropriate
//! position in a compact square slice array" and reports that the DH-TRNG
//! occupies exactly **8 slices**: 20 LUTs + 4 MUXes for the entropy source
//! and 14 DFFs + 3 LUTs for the sampling array.
//!
//! The packing model implemented here follows those constraints:
//!
//! * the design is split into **regions** (entropy source, sampling array,
//!   feedback), each placed contiguously;
//! * within a region, LUTs of the *same logical class* (ring inverters,
//!   ring enables, coupling XORs, …) share slices, but classes are not
//!   mixed — the "constrain by type" rule;
//! * wide-function MUXes (F7) are in-slice resources attached to LUT
//!   pairs: they never consume extra slices as long as each slice uses at
//!   most [`SliceSpec::paired_muxes`] of them;
//! * flip-flops pack eight to a slice, and a region's LUTs may ride along
//!   in its DFF slices when they fit (the sampling array's 3-LUT XOR tree
//!   does exactly this).
//!
//! With the DH-TRNG reference regions this yields `5 + 2 + 1 = 8` slices —
//! the paper's number — while [`pack_unconstrained`] reports the looser
//! 6-slice bound a constraint-free packer would claim.

use crate::device::SliceSpec;
use crate::resources::ResourceReport;

/// A class of LUT-mapped cells that must be placed together (paper §3.3:
/// "the placement of the same type of gates ... can be flexibly adjusted",
/// but types are not mixed within a slice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutClass {
    /// Class label (e.g. `"ring-inv"`).
    pub name: String,
    /// Number of LUTs in the class.
    pub count: u32,
}

impl LutClass {
    /// Creates a class.
    pub fn new(name: impl Into<String>, count: u32) -> Self {
        Self {
            name: name.into(),
            count,
        }
    }
}

/// A contiguously-placed region of the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region label (e.g. `"entropy-source"`).
    pub name: String,
    /// LUT classes in the region.
    pub lut_classes: Vec<LutClass>,
    /// Wide-function MUX count.
    pub muxes: u32,
    /// Flip-flop count.
    pub dffs: u32,
}

impl Region {
    /// Creates a region.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            lut_classes: Vec::new(),
            muxes: 0,
            dffs: 0,
        }
    }

    /// Adds a LUT class (builder style).
    #[must_use]
    pub fn with_luts(mut self, name: &str, count: u32) -> Self {
        self.lut_classes.push(LutClass::new(name, count));
        self
    }

    /// Sets the MUX count (builder style).
    #[must_use]
    pub fn with_muxes(mut self, count: u32) -> Self {
        self.muxes = count;
        self
    }

    /// Sets the DFF count (builder style).
    #[must_use]
    pub fn with_dffs(mut self, count: u32) -> Self {
        self.dffs = count;
        self
    }

    /// Total cell resources of the region.
    pub fn resources(&self) -> ResourceReport {
        ResourceReport::new(
            self.lut_classes.iter().map(|c| c.count).sum(),
            self.muxes,
            self.dffs,
        )
    }

    /// The three regions of the paper's reference implementation
    /// (§3.3): entropy source (20 LUTs in three classes + 4 MUXes),
    /// sampling array (3 XOR-tree LUTs + 13 DFFs), and the feedback
    /// flip-flop placed beside the entropy source.
    pub fn dh_trng_reference() -> Vec<Region> {
        vec![
            Region::new("entropy-source")
                .with_luts("ring-enable", 4)
                .with_luts("ring-inv", 12)
                .with_luts("coupling-xor", 4)
                .with_muxes(4),
            Region::new("sampling-array")
                .with_luts("xor-tree", 3)
                .with_dffs(13),
            Region::new("feedback").with_dffs(1),
        ]
    }
}

/// Per-region packing result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRegion {
    /// Region label.
    pub name: String,
    /// Slices occupied by the region.
    pub slices: u32,
}

/// Whole-design packing result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedDesign {
    /// Per-region breakdown, in input order.
    pub regions: Vec<PackedRegion>,
    /// Total slice count.
    pub total_slices: u32,
}

fn div_ceil(a: u32, b: u32) -> u32 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// Packs one region under the typed-placement rules described in the
/// [module docs](self).
///
/// # Panics
///
/// Panics if the region's MUX demand exceeds what its LUT slices can host
/// (each slice hosts at most [`SliceSpec::paired_muxes`]).
pub fn pack_region(region: &Region, slice: SliceSpec) -> u32 {
    // DFF slices first; they can absorb LUTs.
    let dff_slices = div_ceil(region.dffs, slice.dffs);

    // Type-constrained LUT packing: each class rounds up separately.
    let lut_slices_needed: u32 = region
        .lut_classes
        .iter()
        .map(|c| div_ceil(c.count, slice.luts))
        .sum();

    // LUTs may ride along in DFF slices if the whole demand fits there
    // (small control/tree logic); otherwise they keep their own slices.
    let total_luts: u32 = region.lut_classes.iter().map(|c| c.count).sum();
    let lut_slices = if total_luts <= dff_slices * slice.luts {
        0
    } else {
        lut_slices_needed
    };

    // MUXes are in-slice resources: verify the LUT slices can host them.
    let host_slices = lut_slices.max(dff_slices);
    assert!(
        region.muxes <= host_slices * slice.paired_muxes,
        "region `{}` needs {} MUXes but its {} slices host at most {}",
        region.name,
        region.muxes,
        host_slices,
        host_slices * slice.paired_muxes
    );

    lut_slices + dff_slices
}

/// Packs a whole design region by region.
pub fn pack_design(regions: &[Region], slice: SliceSpec) -> PackedDesign {
    let packed: Vec<PackedRegion> = regions
        .iter()
        .map(|r| PackedRegion {
            name: r.name.clone(),
            slices: pack_region(r, slice),
        })
        .collect();
    let total_slices = packed.iter().map(|p| p.slices).sum();
    PackedDesign {
        regions: packed,
        total_slices,
    }
}

/// Constraint-free lower bound: cells of any type share slices freely.
///
/// This is what a packer without the paper's typed-placement rule would
/// report; the DH-TRNG reference design packs to 6 slices this way (vs the
/// 8 the paper measures with constraints).
pub fn pack_unconstrained(total: ResourceReport, slice: SliceSpec) -> u32 {
    div_ceil(total.luts, slice.luts)
        .max(div_ceil(total.muxes, slice.muxes))
        .max(div_ceil(total.dffs, slice.dffs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SliceSpec {
        SliceSpec::xilinx_6_7_series()
    }

    #[test]
    fn dh_trng_reference_packs_to_eight_slices() {
        let regions = Region::dh_trng_reference();
        let packed = pack_design(&regions, spec());
        assert_eq!(packed.total_slices, 8, "{packed:?}");
        // Region breakdown: 5 (entropy) + 2 (sampling) + 1 (feedback).
        let slices: Vec<u32> = packed.regions.iter().map(|r| r.slices).collect();
        assert_eq!(slices, vec![5, 2, 1]);
    }

    #[test]
    fn dh_trng_reference_totals_match_paper() {
        let total: ResourceReport = Region::dh_trng_reference()
            .iter()
            .map(Region::resources)
            .sum();
        assert_eq!(total, ResourceReport::new(23, 4, 14));
    }

    #[test]
    fn unconstrained_bound_is_smaller() {
        let total = ResourceReport::new(23, 4, 14);
        assert_eq!(pack_unconstrained(total, spec()), 6);
    }

    #[test]
    fn luts_ride_in_dff_slices_when_they_fit() {
        let r = Region::new("sampling")
            .with_luts("xor-tree", 3)
            .with_dffs(13);
        // 13 DFFs -> 2 slices; 3 LUTs fit in 2*4 LUT positions -> 0 extra.
        assert_eq!(pack_region(&r, spec()), 2);
    }

    #[test]
    fn luts_get_own_slices_when_they_do_not_fit() {
        let r = Region::new("big").with_luts("logic", 9).with_dffs(8);
        // 8 DFFs -> 1 slice hosting up to 4 LUTs; 9 LUTs don't fit -> own
        // slices: ceil(9/4) = 3, plus the DFF slice.
        assert_eq!(pack_region(&r, spec()), 4);
    }

    #[test]
    fn lut_classes_do_not_share_slices() {
        // 2 classes of 3 LUTs each: typed packing needs 2 slices even
        // though 6 LUTs would fit in ceil(6/4) = 2 anyway; make classes
        // smaller to expose the difference.
        let r = Region::new("typed")
            .with_luts("a", 1)
            .with_luts("b", 1)
            .with_luts("c", 1);
        assert_eq!(pack_region(&r, spec()), 3);
    }

    #[test]
    fn empty_region_is_free() {
        assert_eq!(pack_region(&Region::new("empty"), spec()), 0);
    }

    #[test]
    #[should_panic(expected = "MUXes")]
    fn too_many_muxes_panics() {
        let r = Region::new("muxy").with_luts("l", 4).with_muxes(5);
        let _ = pack_region(&r, spec());
    }
}
