//! End-to-end daemon tests over real sockets: the wire protocol, the
//! thread-per-connection server, and the blocking client all in one
//! loop, with concurrent out-of-process-style clients.

use std::thread;

use dhtrng_serve::{serve_tcp, Client, ClientError, ErrorCode, Service, ServiceConfig};
use dhtrng_stream::{EntropySource, Tier};

fn service(seed: u64) -> Service {
    let source = EntropySource::builder()
        .shards(2)
        .seed(seed)
        .chunk_bytes(2048)
        .build()
        .expect("valid source");
    Service::new(source)
}

#[test]
fn concurrent_tcp_clients_each_get_their_own_session() {
    let handle = serve_tcp(service(41), "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    let sessions: Vec<(u64, Vec<u8>)> = thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect_tcp(addr).expect("connect");
                    let id = client.hello(Tier::Drbg, None).expect("handshake");
                    let mut delivered = Vec::new();
                    // Client::read verifies offset contiguity itself.
                    for _ in 0..6 {
                        delivered.extend(client.read(48).expect("read"));
                    }
                    (id, delivered)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("no panics"))
            .collect()
    });

    // Distinct sessions, distinct output streams.
    for (i, (id_a, bytes_a)) in sessions.iter().enumerate() {
        for (id_b, bytes_b) in &sessions[i + 1..] {
            assert_ne!(id_a, id_b, "session ids must be unique");
            assert_ne!(bytes_a, bytes_b, "sessions must not share output");
        }
    }

    let mut client = Client::connect_tcp(addr).expect("connect");
    client.hello(Tier::Conditioned, None).expect("handshake");
    let report = client.stat().expect("stat");
    assert!(!report.degraded);
    assert_eq!(report.shards, 2);
    assert_eq!(report.sessions_opened, 9);

    handle.shutdown();
}

#[test]
fn daemon_enforces_quotas_and_read_caps_over_the_wire() {
    let source = EntropySource::builder()
        .shards(1)
        .seed(43)
        .chunk_bytes(1024)
        .build()
        .expect("valid source");
    let service = Service::with_config(
        source,
        ServiceConfig {
            max_read: 128,
            default_quota: None,
        },
    );
    let handle = serve_tcp(service, "127.0.0.1:0").expect("bind");

    let mut client = Client::connect_tcp(handle.addr()).expect("connect");
    client.hello(Tier::Drbg, Some(96)).expect("handshake");

    match client.read(256) {
        Err(ClientError::Daemon {
            code: ErrorCode::Oversized,
            retriable: false,
            ..
        }) => {}
        other => panic!("expected oversize rejection, got {other:?}"),
    }
    match client.read(97) {
        Err(ClientError::Daemon {
            code: ErrorCode::Quota,
            retriable: false,
            ..
        }) => {}
        other => panic!("expected quota rejection, got {other:?}"),
    }
    // Rejections deliver nothing: the full 96-byte budget is intact.
    assert_eq!(client.read(96).expect("within quota").len(), 96);

    handle.shutdown();
}

#[test]
fn malformed_bytes_get_a_typed_error_not_a_hangup() {
    use dhtrng_serve::{Request, Response};
    use std::io::Write;

    let handle = serve_tcp(service(47), "127.0.0.1:0").expect("bind");
    let mut socket = std::net::TcpStream::connect(handle.addr()).expect("connect");

    // A framed-but-gibberish payload answers Malformed...
    dhtrng_serve::proto::write_frame(&mut socket, &[0xEE, 1, 2, 3]).expect("write");
    let payload = dhtrng_serve::proto::read_frame(&mut socket)
        .expect("read")
        .expect("open");
    match Response::decode(&payload).expect("decodable") {
        Response::Error {
            code: ErrorCode::Malformed,
            ..
        } => {}
        other => panic!("expected malformed, got {other:?}"),
    }

    // ...and the same connection still works afterwards.
    dhtrng_serve::proto::write_frame(&mut socket, &Request::Stat.encode()).expect("write");
    let payload = dhtrng_serve::proto::read_frame(&mut socket)
        .expect("read")
        .expect("open");
    assert!(matches!(
        Response::decode(&payload).expect("decodable"),
        Response::Stat(_)
    ));

    // An oversized length prefix is the one thing that does end the
    // connection (the daemon will not allocate for it).
    let huge = (dhtrng_serve::proto::MAX_FRAME_BYTES + 1).to_le_bytes();
    socket.write_all(&huge).expect("write");
    assert!(dhtrng_serve::proto::read_frame(&mut socket)
        .expect("read")
        .is_none());

    handle.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_the_same_protocol() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dhtrng-serve-test-{}.sock", std::process::id()));
    let handle = dhtrng_serve::serve_unix(service(53), &path).expect("bind");

    let mut client = Client::connect_unix(handle.path()).expect("connect");
    client.hello(Tier::Conditioned, None).expect("handshake");
    let bytes = client.read(64).expect("read");
    assert_eq!(bytes.len(), 64);
    let report = client.stat().expect("stat");
    assert_eq!(report.live_sessions, 1);

    drop(client);
    handle.shutdown();
    assert!(!path.exists(), "shutdown must unlink the socket file");
}
