//! A load generator for the daemon's service core.
//!
//! Simulates thousands of concurrent client sessions against one
//! [`Service`] — every operation is a full wire round-trip (request
//! encoded to frame bytes, decoded by the connection state machine,
//! response encoded, decoded by the simulated client), so the
//! protocol itself is under test; only the socket syscalls are
//! elided, which is what lets a single process drive 1,000+ live
//! sessions without file-descriptor limits.
//!
//! Every simulated client independently verifies **exactly-once
//! delivery** (each `Data.offset` must extend its stream contiguously
//! with exactly the requested length) and counts every non-`Data`
//! answer as a protocol error. Per-read latency is sampled on every
//! read and reported as p50/p99/max — the numbers `BENCH_5.json`
//! records.

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use dhtrng_stream::Tier;

use crate::proto::{Request, Response};
use crate::service::Service;

/// What load to apply.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent client sessions (all alive at once).
    pub clients: usize,
    /// Reads each client issues after its `Hello`.
    pub reads_per_client: usize,
    /// Bytes per read.
    pub read_bytes: u32,
    /// Tier every client opens at.
    pub tier: Tier,
    /// Worker threads carrying the clients (each thread interleaves
    /// its share round-robin, so sessions progress concurrently even
    /// with fewer threads than clients).
    pub threads: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            clients: 1000,
            reads_per_client: 16,
            read_bytes: 64,
            tier: Tier::Drbg,
            threads: 8,
        }
    }
}

/// What the run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Sessions opened (equals `LoadConfig::clients` on a clean run).
    pub clients: usize,
    /// Successful reads across all clients.
    pub reads: u64,
    /// Entropy bytes delivered across all clients.
    pub bytes: u64,
    /// Non-`Data`/non-`HelloOk` answers (the smoke gate demands 0).
    pub protocol_errors: u64,
    /// Offset/length discontinuities — exactly-once violations (the
    /// smoke gate demands 0).
    pub delivery_violations: u64,
    /// Median per-read latency, microseconds (sub-microsecond reads
    /// keep their fractional part — sampling is in nanoseconds).
    pub p50_us: f64,
    /// 99th-percentile per-read latency, microseconds.
    pub p99_us: f64,
    /// Worst per-read latency, microseconds.
    pub max_us: f64,
    /// Wall-clock for the whole run, seconds.
    pub elapsed_secs: f64,
}

struct ThreadTally {
    reads: u64,
    bytes: u64,
    protocol_errors: u64,
    delivery_violations: u64,
    latencies_ns: Vec<u64>,
}

/// One simulated client: its connection state machine plus the
/// expected next offset.
struct SimClient {
    connection: crate::service::Connection,
    offset: u64,
    alive: bool,
}

fn round_trip(client: &mut SimClient, request: &Request) -> Option<Response> {
    let payload = client.connection.handle_frame(&request.encode());
    Response::decode(&payload).ok()
}

/// Applies `config`'s load to `service` and reports what happened.
///
/// All sessions are opened before any read is issued (a barrier
/// separates the phases), so the configured client count is the
/// *simultaneous* session count, not a cumulative total.
pub fn run(service: &Service, config: &LoadConfig) -> LoadReport {
    let clients = config.clients.max(1);
    let threads = config.threads.clamp(1, clients);
    let barrier = Barrier::new(threads);
    let tallies: Mutex<Vec<ThreadTally>> = Mutex::new(Vec::with_capacity(threads));
    let started = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let barrier = &barrier;
            let tallies = &tallies;
            // Round-robin partition so every worker gets a near-equal
            // share of the client population.
            let share = (worker..clients).step_by(threads).count();
            scope.spawn(move || {
                let mut tally = ThreadTally {
                    reads: 0,
                    bytes: 0,
                    protocol_errors: 0,
                    delivery_violations: 0,
                    latencies_ns: Vec::with_capacity(share * config.reads_per_client),
                };
                let mut pool: Vec<SimClient> = (0..share)
                    .map(|_| SimClient {
                        connection: service.connect(),
                        offset: 0,
                        alive: false,
                    })
                    .collect();
                for client in &mut pool {
                    let hello = Request::Hello {
                        tier: config.tier,
                        quota: None,
                    };
                    match round_trip(client, &hello) {
                        Some(Response::HelloOk { .. }) => client.alive = true,
                        _ => tally.protocol_errors += 1,
                    }
                }
                // Every session is open before anyone reads.
                barrier.wait();
                for _ in 0..config.reads_per_client {
                    for client in &mut pool {
                        if !client.alive {
                            continue;
                        }
                        let read = Request::Read {
                            n: config.read_bytes,
                        };
                        let before = Instant::now();
                        let response = round_trip(client, &read);
                        let elapsed_ns =
                            u64::try_from(before.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        match response {
                            Some(Response::Data { offset, bytes }) => {
                                tally.latencies_ns.push(elapsed_ns);
                                if offset != client.offset
                                    || bytes.len() != config.read_bytes as usize
                                {
                                    tally.delivery_violations += 1;
                                    client.alive = false;
                                } else {
                                    client.offset += bytes.len() as u64;
                                    tally.reads += 1;
                                    tally.bytes += bytes.len() as u64;
                                }
                            }
                            _ => {
                                tally.protocol_errors += 1;
                                client.alive = false;
                            }
                        }
                    }
                }
                tallies.lock().expect("tally lock").push(tally);
            });
        }
    });

    let elapsed_secs = started.elapsed().as_secs_f64();
    let mut reads = 0u64;
    let mut bytes = 0u64;
    let mut protocol_errors = 0u64;
    let mut delivery_violations = 0u64;
    let mut latencies = Vec::new();
    for tally in tallies.into_inner().expect("tally lock") {
        reads += tally.reads;
        bytes += tally.bytes;
        protocol_errors += tally.protocol_errors;
        delivery_violations += tally.delivery_violations;
        latencies.extend(tally.latencies_ns);
    }
    latencies.sort_unstable();
    LoadReport {
        clients,
        reads,
        bytes,
        protocol_errors,
        delivery_violations,
        p50_us: percentile(&latencies, 50.0) as f64 / 1e3,
        p99_us: percentile(&latencies, 99.0) as f64 / 1e3,
        max_us: latencies.last().copied().unwrap_or(0) as f64 / 1e3,
        elapsed_secs,
    }
}

/// Nearest-rank percentile over an already-sorted sample (0 when the
/// sample is empty).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_stream::EntropySource;

    #[test]
    fn a_small_fleet_runs_clean() {
        let source = EntropySource::builder()
            .shards(2)
            .seed(21)
            .chunk_bytes(2048)
            .build()
            .expect("valid source");
        let service = Service::new(source);
        let config = LoadConfig {
            clients: 64,
            reads_per_client: 4,
            read_bytes: 48,
            tier: Tier::Drbg,
            threads: 4,
        };
        let report = run(&service, &config);
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.delivery_violations, 0);
        assert_eq!(report.reads, 64 * 4);
        assert_eq!(report.bytes, 64 * 4 * 48);
        assert!(report.p50_us <= report.p99_us && report.p99_us <= report.max_us);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 0.0), 1);
        assert_eq!(percentile(&sample, 50.0), 51);
        assert_eq!(percentile(&sample, 99.0), 99);
        assert_eq!(percentile(&sample, 100.0), 100);
    }
}
