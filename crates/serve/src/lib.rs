//! Entropy-as-a-service for the DH-TRNG reproduction.
//!
//! The paper's deployment story is one device feeding many consumers;
//! this crate is the service half of that story: a daemon that
//! multiplexes many concurrent clients over **one** shared sharded
//! [`EntropySource`](dhtrng_stream::EntropySource). Each client's
//! `Hello` mints a private session — for the drbg tier a cheap
//! per-session DRBG reseeded from the shared conditioned stream under
//! the source's round-robin reseed arbiter — so raw entropy is
//! arbitrated fairly, per-client quotas are enforced at the session
//! layer, and a shard retiring mid-run degrades the service (reseeds
//! stall, `Stat` reports it) instead of killing live clients.
//!
//! The crate splits along the transport seam:
//!
//! * [`proto`] — the length-prefixed wire protocol
//!   (`Hello`/`Read`/`Stat` and their responses);
//! * [`service`] — the sans-io connection state machine every
//!   transport drives;
//! * [`server`] — std-only TCP and (on unix) unix-socket front-ends,
//!   thread per connection, plus a blocking [`Client`];
//! * [`loadgen`] — thousands of simulated concurrent clients driving
//!   the service through full in-memory wire round-trips, verifying
//!   exactly-once delivery and recording read-latency percentiles.
//!
//! # Example
//!
//! ```
//! use dhtrng_serve::{Client, Service};
//! use dhtrng_stream::{EntropySource, Tier};
//!
//! let source = EntropySource::builder()
//!     .shards(2)
//!     .seed(7)
//!     .chunk_bytes(2048)
//!     .build()
//!     .expect("valid source");
//! let handle = dhtrng_serve::serve_tcp(Service::new(source), "127.0.0.1:0").expect("bind");
//!
//! let mut client = Client::connect_tcp(handle.addr()).expect("connect");
//! client.hello(Tier::Drbg, None).expect("handshake");
//! let key = client.read(64).expect("entropy");
//! assert_eq!(key.len(), 64);
//! handle.shutdown();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod loadgen;
pub mod proto;
pub mod server;
pub mod service;

pub use loadgen::{LoadConfig, LoadReport};
pub use proto::{ErrorCode, ProtoError, Request, Response, StatReport};
#[cfg(unix)]
pub use server::serve_unix;
#[cfg(unix)]
pub use server::UnixServerHandle;
pub use server::{serve_tcp, Client, ClientError, ServerHandle};
pub use service::{Connection, Service, ServiceConfig};
