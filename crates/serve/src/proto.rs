//! The wire protocol: length-prefixed request/response frames.
//!
//! Every message is one frame: a little-endian `u32` payload length,
//! then the payload. The payload's first byte is the opcode; all
//! integers are little-endian. The protocol is deliberately
//! transport-agnostic — the same bytes flow over TCP, a unix socket,
//! or the in-memory load generator — and deliberately versionless-
//! by-extension: unknown opcodes decode to a typed error (never a
//! panic, never a desync, because the frame length still delimits the
//! message).
//!
//! ```text
//! requests                          responses
//! 0x01 Hello  tier:u8 quota:u64     0x00 HelloOk  session:u64
//! 0x02 Read   n:u32                 0x01 Data     offset:u64 bytes[..]
//! 0x03 Stat                         0x02 Stat     StatReport fields
//!                                   0x7F Error    code:u8 retriable:u8 msg[..]
//! ```
//!
//! `Hello.quota = 0` means unmetered. `Data.offset` is the session's
//! delivered-byte offset of the first payload byte: a client asserting
//! offset continuity has verified exactly-once delivery end to end
//! (the load generator does exactly that).

use std::io::{self, Read, Write};

use dhtrng_stream::Tier;

/// Hard cap on one frame's payload (guards the length prefix against
/// hostile or corrupt peers before any allocation happens).
pub const MAX_FRAME_BYTES: u32 = (1 << 20) + 64;

/// Largest `Read.n` the protocol itself admits (services may impose a
/// smaller [`max_read`](crate::ServiceConfig::max_read)).
pub const MAX_READ_BYTES: u32 = 1 << 20;

/// A client-to-daemon message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Open the connection's session at `tier`, optionally metered.
    Hello {
        /// Quality tier of the requested session.
        tier: Tier,
        /// Lifetime byte budget (`None` = unmetered).
        quota: Option<u64>,
    },
    /// Read `n` bytes from the session.
    Read {
        /// Bytes requested.
        n: u32,
    },
    /// Ask for the source's service counters.
    Stat,
}

/// A daemon-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session is open.
    HelloOk {
        /// Source-unique session id.
        session: u64,
    },
    /// Entropy bytes, with the session's delivered-byte offset of the
    /// first payload byte.
    Data {
        /// Offset of `bytes[0]` in the session's delivered stream.
        offset: u64,
        /// The entropy payload.
        bytes: Vec<u8>,
    },
    /// The source's service counters.
    Stat(StatReport),
    /// A typed failure; `retriable` mirrors
    /// [`Error::is_retriable`](dhtrng_stream::Error::is_retriable).
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Whether retrying the identical request can succeed.
        retriable: bool,
        /// Human-readable detail.
        message: String,
    },
}

/// What the daemon's `Stat` response reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatReport {
    /// Whether the source has latched a terminal failure.
    pub degraded: bool,
    /// Shards in the deployment.
    pub shards: u32,
    /// Health-triggered shard restarts so far.
    pub restarts: u64,
    /// Sessions currently alive.
    pub live_sessions: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Reseed harvests served through the arbiter.
    pub reseeds_served: u64,
    /// Reseeds that stalled because the source had degraded.
    pub stalled_reseeds: u64,
    /// Conditioned bytes delivered (session reads + seed harvests).
    pub conditioned_bytes: u64,
    /// Healthy chunks the shard workers produced (telemetry).
    pub chunks_produced: u64,
    /// Health-test verdicts that failed (telemetry).
    pub health_failures: u64,
    /// Shards that retired terminally (telemetry).
    pub retirements: u64,
    /// Ring hand-off parks — a thread blocked on an empty/full ring
    /// (telemetry).
    pub ring_parks: u64,
    /// Ring hand-off wakes — a notify found a parked peer (telemetry).
    pub ring_wakes: u64,
    /// Conditioned-read rollbacks after a terminal source error
    /// (telemetry).
    pub rollbacks: u64,
    /// Reseed harvests that stalled, as counted by the stage telemetry
    /// (agrees with `stalled_reseeds`).
    pub telemetry_stalled_reseeds: u64,
    /// Bytes delivered through sessions, as counted by the stage
    /// telemetry.
    pub session_bytes: u64,
}

/// Failure classes a [`Response::Error`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request could not be decoded, or was illegal in this
    /// connection state (e.g. `Read` before `Hello`).
    Malformed,
    /// The session's byte quota cannot cover the request.
    Quota,
    /// The reseed arbiter refused the harvest for now; retry.
    Backpressure,
    /// The source failed terminally under this request.
    SourceFailed,
    /// The requested read exceeds the service's size cap.
    Oversized,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            Self::Malformed => 1,
            Self::Quota => 2,
            Self::Backpressure => 3,
            Self::SourceFailed => 4,
            Self::Oversized => 5,
        }
    }

    fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(Self::Malformed),
            2 => Some(Self::Quota),
            3 => Some(Self::Backpressure),
            4 => Some(Self::SourceFailed),
            5 => Some(Self::Oversized),
            _ => None,
        }
    }
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload was empty or shorter than its opcode demands.
    Truncated,
    /// The leading opcode byte is not part of the protocol.
    UnknownOpcode(
        /// The rejected opcode.
        u8,
    ),
    /// A field held an out-of-range value (tier, error code).
    InvalidField(
        /// Which field was rejected.
        &'static str,
    ),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame payload truncated"),
            Self::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            Self::InvalidField(field) => write!(f, "invalid field: {field}"),
        }
    }
}

impl std::error::Error for ProtoError {}

const OP_HELLO: u8 = 0x01;
const OP_READ: u8 = 0x02;
const OP_STAT_REQ: u8 = 0x03;
const OP_HELLO_OK: u8 = 0x00;
const OP_DATA: u8 = 0x01;
const OP_STAT_RSP: u8 = 0x02;
const OP_ERROR: u8 = 0x7F;

fn tier_to_byte(tier: Tier) -> u8 {
    match tier {
        Tier::Raw => 0,
        Tier::Conditioned => 1,
        Tier::Drbg => 2,
    }
}

fn tier_from_byte(byte: u8) -> Option<Tier> {
    match byte {
        0 => Some(Tier::Raw),
        1 => Some(Tier::Conditioned),
        2 => Some(Tier::Drbg),
        _ => None,
    }
}

fn take_u32(payload: &[u8], at: usize) -> Result<u32, ProtoError> {
    let bytes = payload
        .get(at..at + 4)
        .ok_or(ProtoError::Truncated)?
        .try_into()
        .expect("4-byte slice");
    Ok(u32::from_le_bytes(bytes))
}

fn take_u64(payload: &[u8], at: usize) -> Result<u64, ProtoError> {
    let bytes = payload
        .get(at..at + 8)
        .ok_or(ProtoError::Truncated)?
        .try_into()
        .expect("8-byte slice");
    Ok(u64::from_le_bytes(bytes))
}

impl Request {
    /// Serialises the request payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            Self::Hello { tier, quota } => {
                let mut payload = Vec::with_capacity(10);
                payload.push(OP_HELLO);
                payload.push(tier_to_byte(tier));
                payload.extend_from_slice(&quota.unwrap_or(0).to_le_bytes());
                payload
            }
            Self::Read { n } => {
                let mut payload = Vec::with_capacity(5);
                payload.push(OP_READ);
                payload.extend_from_slice(&n.to_le_bytes());
                payload
            }
            Self::Stat => vec![OP_STAT_REQ],
        }
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation, an unknown opcode, or an
    /// out-of-range tier.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let (&opcode, rest) = payload.split_first().ok_or(ProtoError::Truncated)?;
        match opcode {
            OP_HELLO => {
                let &tier = rest.first().ok_or(ProtoError::Truncated)?;
                let tier = tier_from_byte(tier).ok_or(ProtoError::InvalidField("tier"))?;
                let quota = take_u64(rest, 1)?;
                Ok(Self::Hello {
                    tier,
                    quota: (quota != 0).then_some(quota),
                })
            }
            OP_READ => Ok(Self::Read {
                n: take_u32(rest, 0)?,
            }),
            OP_STAT_REQ => Ok(Self::Stat),
            other => Err(ProtoError::UnknownOpcode(other)),
        }
    }
}

impl Response {
    /// Serialises the response payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Self::HelloOk { session } => {
                let mut payload = Vec::with_capacity(9);
                payload.push(OP_HELLO_OK);
                payload.extend_from_slice(&session.to_le_bytes());
                payload
            }
            Self::Data { offset, bytes } => {
                let mut payload = Vec::with_capacity(9 + bytes.len());
                payload.push(OP_DATA);
                payload.extend_from_slice(&offset.to_le_bytes());
                payload.extend_from_slice(bytes);
                payload
            }
            Self::Stat(report) => {
                let mut payload = Vec::with_capacity(118);
                payload.push(OP_STAT_RSP);
                payload.push(u8::from(report.degraded));
                payload.extend_from_slice(&report.shards.to_le_bytes());
                payload.extend_from_slice(&report.restarts.to_le_bytes());
                payload.extend_from_slice(&report.live_sessions.to_le_bytes());
                payload.extend_from_slice(&report.sessions_opened.to_le_bytes());
                payload.extend_from_slice(&report.reseeds_served.to_le_bytes());
                payload.extend_from_slice(&report.stalled_reseeds.to_le_bytes());
                payload.extend_from_slice(&report.conditioned_bytes.to_le_bytes());
                payload.extend_from_slice(&report.chunks_produced.to_le_bytes());
                payload.extend_from_slice(&report.health_failures.to_le_bytes());
                payload.extend_from_slice(&report.retirements.to_le_bytes());
                payload.extend_from_slice(&report.ring_parks.to_le_bytes());
                payload.extend_from_slice(&report.ring_wakes.to_le_bytes());
                payload.extend_from_slice(&report.rollbacks.to_le_bytes());
                payload.extend_from_slice(&report.telemetry_stalled_reseeds.to_le_bytes());
                payload.extend_from_slice(&report.session_bytes.to_le_bytes());
                payload
            }
            Self::Error {
                code,
                retriable,
                message,
            } => {
                let mut payload = Vec::with_capacity(3 + message.len());
                payload.push(OP_ERROR);
                payload.push(code.to_byte());
                payload.push(u8::from(*retriable));
                payload.extend_from_slice(message.as_bytes());
                payload
            }
        }
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation, an unknown opcode, an
    /// out-of-range error code, or a non-UTF-8 error message.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let (&opcode, rest) = payload.split_first().ok_or(ProtoError::Truncated)?;
        match opcode {
            OP_HELLO_OK => Ok(Self::HelloOk {
                session: take_u64(rest, 0)?,
            }),
            OP_DATA => Ok(Self::Data {
                offset: take_u64(rest, 0)?,
                bytes: rest.get(8..).ok_or(ProtoError::Truncated)?.to_vec(),
            }),
            OP_STAT_RSP => {
                let &degraded = rest.first().ok_or(ProtoError::Truncated)?;
                Ok(Self::Stat(StatReport {
                    degraded: degraded != 0,
                    shards: take_u32(rest, 1)?,
                    restarts: take_u64(rest, 5)?,
                    live_sessions: take_u64(rest, 13)?,
                    sessions_opened: take_u64(rest, 21)?,
                    reseeds_served: take_u64(rest, 29)?,
                    stalled_reseeds: take_u64(rest, 37)?,
                    conditioned_bytes: take_u64(rest, 45)?,
                    chunks_produced: take_u64(rest, 53)?,
                    health_failures: take_u64(rest, 61)?,
                    retirements: take_u64(rest, 69)?,
                    ring_parks: take_u64(rest, 77)?,
                    ring_wakes: take_u64(rest, 85)?,
                    rollbacks: take_u64(rest, 93)?,
                    telemetry_stalled_reseeds: take_u64(rest, 101)?,
                    session_bytes: take_u64(rest, 109)?,
                }))
            }
            OP_ERROR => {
                let &code = rest.first().ok_or(ProtoError::Truncated)?;
                let code =
                    ErrorCode::from_byte(code).ok_or(ProtoError::InvalidField("error code"))?;
                let &retriable = rest.get(1).ok_or(ProtoError::Truncated)?;
                let message = std::str::from_utf8(rest.get(2..).ok_or(ProtoError::Truncated)?)
                    .map_err(|_| ProtoError::InvalidField("error message"))?
                    .to_owned();
                Ok(Self::Error {
                    code,
                    retriable: retriable != 0,
                    message,
                })
            }
            other => Err(ProtoError::UnknownOpcode(other)),
        }
    }
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// The transport's I/O error; `InvalidInput` if the payload exceeds
/// [`MAX_FRAME_BYTES`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES);
    let Some(len) = len else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds MAX_FRAME_BYTES",
        ));
    };
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame's payload; `Ok(None)` on a clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// The transport's I/O error; `InvalidData` if the peer announces a
/// frame over [`MAX_FRAME_BYTES`]; `UnexpectedEof` on a mid-frame
/// hangup.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // A clean EOF before any length byte is an orderly close.
    match reader.read(&mut len)? {
        0 => return Ok(None),
        n => reader.read_exact(&mut len[n..])?,
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "peer announced an oversized frame",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Hello {
                tier: Tier::Drbg,
                quota: Some(4096),
            },
            Request::Hello {
                tier: Tier::Raw,
                quota: None,
            },
            Request::Read { n: 32 },
            Request::Stat,
        ] {
            let decoded = Request::decode(&request.encode()).expect("round trip");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        for response in [
            Response::HelloOk { session: 7 },
            Response::Data {
                offset: 640,
                bytes: vec![1, 2, 3],
            },
            Response::Stat(StatReport {
                degraded: true,
                shards: 4,
                restarts: 2,
                live_sessions: 1000,
                sessions_opened: 1024,
                reseeds_served: 9,
                stalled_reseeds: 3,
                conditioned_bytes: 1 << 20,
                chunks_produced: 512,
                health_failures: 6,
                retirements: 1,
                ring_parks: 88,
                ring_wakes: 90,
                rollbacks: 2,
                telemetry_stalled_reseeds: 3,
                session_bytes: 1 << 19,
            }),
            Response::Error {
                code: ErrorCode::Backpressure,
                retriable: true,
                message: "retry after a turn".into(),
            },
        ] {
            let decoded = Response::decode(&response.encode()).expect("round trip");
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(
            Request::decode(&[0x42]),
            Err(ProtoError::UnknownOpcode(0x42))
        );
        assert_eq!(
            Request::decode(&[OP_HELLO, 9, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(ProtoError::InvalidField("tier"))
        );
        assert_eq!(
            Request::decode(&[OP_READ, 1, 2]),
            Err(ProtoError::Truncated)
        );
        assert_eq!(
            Response::decode(&[OP_ERROR, 99, 0]),
            Err(ProtoError::InvalidField("error code"))
        );
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3]).expect("write");
        write_frame(&mut wire, &[]).expect("write");
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).expect("frame"), Some(vec![1, 2, 3]));
        assert_eq!(read_frame(&mut cursor).expect("frame"), Some(vec![]));
        assert_eq!(read_frame(&mut cursor).expect("eof"), None);

        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut cursor).is_err());
    }
}
