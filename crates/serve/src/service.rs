//! The transport-agnostic service core.
//!
//! A [`Service`] wraps one shared [`EntropySource`] plus daemon
//! policy; each client connection gets a [`Connection`] — a small
//! state machine that turns decoded [`Request`]s into [`Response`]s.
//! The socket server ([`crate::server`]) and the in-memory load
//! generator ([`crate::loadgen`]) drive the *same* state machine, so
//! everything the load generator proves (exactly-once offsets, zero
//! protocol errors under shard retirement) holds for the daemon too:
//! only the byte transport differs.
//!
//! # Connection lifecycle
//!
//! ```text
//! AwaitingHello --Hello--> Open(Session) --Read/Stat--> Open
//!        |                      |
//!        +--Read--> Error       +--Hello--> Error (duplicate)
//! ```
//!
//! `Hello` opens the session *and primes it*: for the drbg tier the
//! first seed harvest happens at handshake time, so a shard that
//! retires after `HelloOk` can never kill the session — its reseeds
//! stall and reads keep flowing from DRBG state ([`Response::Stat`]
//! reports `degraded` and the climbing `stalled_reseeds`).

use dhtrng_stream::{EntropySource, Error, Session, SessionConfig, Tier};

use crate::proto::{ErrorCode, ProtoError, Request, Response, StatReport};

/// Daemon-side policy knobs, per [`Service`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Largest single `Read` the service grants (default 64 KiB;
    /// never above [`crate::proto::MAX_READ_BYTES`]).
    pub max_read: u32,
    /// Quota imposed on sessions whose `Hello` asked for none
    /// (`None` = such sessions are unmetered).
    pub default_quota: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_read: 64 * 1024,
            default_quota: None,
        }
    }
}

/// One daemon: a shared [`EntropySource`] plus service policy.
///
/// Cloning is cheap (the source is shared, not duplicated) — the
/// socket server clones one `Service` into every connection thread.
#[derive(Debug, Clone)]
pub struct Service {
    source: EntropySource,
    config: ServiceConfig,
}

impl Service {
    /// Serves `source` under the default [`ServiceConfig`].
    pub fn new(source: EntropySource) -> Self {
        Self::with_config(source, ServiceConfig::default())
    }

    /// Serves `source` under an explicit policy.
    pub fn with_config(source: EntropySource, config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            max_read: config.max_read.min(crate::proto::MAX_READ_BYTES),
            ..config
        };
        Self { source, config }
    }

    /// The shared source every connection draws from.
    pub fn source(&self) -> &EntropySource {
        &self.source
    }

    /// The service policy.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Opens a fresh connection state machine (no session yet — the
    /// client's `Hello` mints one).
    pub fn connect(&self) -> Connection {
        Connection {
            service: self.clone(),
            session: None,
        }
    }

    /// The source counters as a wire-ready [`StatReport`].
    pub fn stat(&self) -> StatReport {
        let stats = self.source.stats();
        StatReport {
            degraded: stats.degraded.is_some(),
            shards: stats.shards as u32,
            restarts: stats.restarts,
            live_sessions: stats.live_sessions,
            sessions_opened: stats.sessions_opened,
            reseeds_served: stats.reseeds_served,
            stalled_reseeds: stats.stalled_reseeds,
            conditioned_bytes: stats.conditioned_bytes,
            chunks_produced: stats.telemetry.chunks_produced,
            health_failures: stats.telemetry.health_failures,
            retirements: stats.telemetry.retirements,
            ring_parks: stats.telemetry.ring_parks,
            ring_wakes: stats.telemetry.ring_wakes,
            rollbacks: stats.telemetry.rollbacks,
            telemetry_stalled_reseeds: stats.telemetry.reseeds_stalled,
            session_bytes: stats.telemetry.session_bytes,
        }
    }
}

/// Per-client connection state: `None` until a successful `Hello`,
/// then the client's private [`Session`].
#[derive(Debug)]
pub struct Connection {
    service: Service,
    session: Option<Session>,
}

impl Connection {
    /// Handles one decoded request; always produces a response
    /// (errors are responses, never panics or silent drops).
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Hello { tier, quota } => self.hello(tier, quota),
            Request::Read { n } => self.read(n),
            Request::Stat => Response::Stat(self.service.stat()),
        }
    }

    /// Handles one raw frame payload: decode, dispatch, encode. The
    /// returned bytes are the response payload (no length prefix).
    /// Undecodable payloads become an encoded `Malformed` error
    /// response — a broken client cannot crash or desync the daemon.
    pub fn handle_frame(&mut self, payload: &[u8]) -> Vec<u8> {
        let response = match Request::decode(payload) {
            Ok(request) => self.handle(request),
            Err(error) => malformed(&error),
        };
        response.encode()
    }

    /// The session, once `Hello` has opened one.
    pub fn session(&self) -> Option<&Session> {
        self.session.as_ref()
    }

    fn hello(&mut self, tier: Tier, quota: Option<u64>) -> Response {
        if self.session.is_some() {
            return Response::Error {
                code: ErrorCode::Malformed,
                retriable: false,
                message: "duplicate Hello: the connection already has a session".into(),
            };
        }
        let quota = quota.or(self.service.config.default_quota);
        let mut config = SessionConfig::new(tier);
        if let Some(bytes) = quota {
            config = config.quota(bytes);
        }
        let mut session = self.service.source.session_with(config);
        // Prime at handshake time: the drbg session instantiates from
        // a live harvest now, so later shard retirement degrades it
        // (stalled reseeds) instead of killing it mid-read.
        if let Err(error) = session.prime() {
            return stream_error(&error);
        }
        let id = session.id();
        self.session = Some(session);
        Response::HelloOk { session: id }
    }

    fn read(&mut self, n: u32) -> Response {
        let Some(session) = self.session.as_mut() else {
            return Response::Error {
                code: ErrorCode::Malformed,
                retriable: false,
                message: "Read before Hello: open a session first".into(),
            };
        };
        if n > self.service.config.max_read {
            return Response::Error {
                code: ErrorCode::Oversized,
                retriable: false,
                message: format!(
                    "read of {n} bytes exceeds the service cap of {} bytes",
                    self.service.config.max_read
                ),
            };
        }
        let offset = session.bytes_delivered();
        let mut bytes = vec![0u8; n as usize];
        match session.read(&mut bytes) {
            Ok(()) => Response::Data { offset, bytes },
            Err(error) => stream_error(&error),
        }
    }
}

fn malformed(error: &ProtoError) -> Response {
    Response::Error {
        code: ErrorCode::Malformed,
        retriable: false,
        message: error.to_string(),
    }
}

fn stream_error(error: &Error) -> Response {
    let code = match error {
        Error::QuotaExceeded { .. } => ErrorCode::Quota,
        Error::Backpressure => ErrorCode::Backpressure,
        _ => ErrorCode::SourceFailed,
    };
    Response::Error {
        code,
        retriable: error.is_retriable(),
        message: error.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtrng_stream::EntropySource;

    fn service() -> Service {
        let source = EntropySource::builder()
            .shards(2)
            .seed(11)
            .chunk_bytes(512)
            .build()
            .expect("valid source");
        Service::new(source)
    }

    #[test]
    fn hello_then_reads_deliver_contiguous_offsets() {
        let service = service();
        let mut connection = service.connect();
        let hello = connection.handle(Request::Hello {
            tier: Tier::Drbg,
            quota: None,
        });
        assert!(matches!(hello, Response::HelloOk { .. }), "got {hello:?}");

        let mut expected = 0u64;
        for _ in 0..8 {
            match connection.handle(Request::Read { n: 96 }) {
                Response::Data { offset, bytes } => {
                    assert_eq!(offset, expected);
                    assert_eq!(bytes.len(), 96);
                    expected += 96;
                }
                other => panic!("expected data, got {other:?}"),
            }
        }
    }

    #[test]
    fn reads_before_hello_and_duplicate_hellos_are_rejected() {
        let service = service();
        let mut connection = service.connect();
        assert!(matches!(
            connection.handle(Request::Read { n: 8 }),
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
        connection.handle(Request::Hello {
            tier: Tier::Conditioned,
            quota: None,
        });
        assert!(matches!(
            connection.handle(Request::Hello {
                tier: Tier::Conditioned,
                quota: None,
            }),
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
    }

    #[test]
    fn quota_and_oversize_map_to_typed_errors() {
        let service = service();
        let mut connection = service.connect();
        connection.handle(Request::Hello {
            tier: Tier::Drbg,
            quota: Some(100),
        });
        match connection.handle(Request::Read { n: 101 }) {
            Response::Error {
                code: ErrorCode::Quota,
                retriable,
                ..
            } => assert!(!retriable),
            other => panic!("expected quota error, got {other:?}"),
        }
        // The rejection delivered nothing, so the full budget remains.
        assert!(matches!(
            connection.handle(Request::Read { n: 100 }),
            Response::Data { offset: 0, .. }
        ));

        match connection.handle(Request::Read {
            n: crate::proto::MAX_READ_BYTES,
        }) {
            Response::Error {
                code: ErrorCode::Oversized,
                ..
            } => {}
            other => panic!("expected oversize error, got {other:?}"),
        }
    }

    #[test]
    fn undecodable_frames_answer_with_malformed() {
        let service = service();
        let mut connection = service.connect();
        let payload = connection.handle_frame(&[0x42, 0, 0]);
        match Response::decode(&payload).expect("decodable") {
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            } => {}
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn stat_reflects_sessions_and_degradation() {
        let source = EntropySource::builder()
            .shards(2)
            .seed(3)
            .chunk_bytes(512)
            .inject_shard_failure(0, 1)
            .max_consecutive_restarts(0)
            .drbg_config(dhtrng_core::drbg::DrbgConfig {
                reseed_interval_bits: 512,
                ..Default::default()
            })
            .build()
            .expect("valid source");
        let service = Service::new(source);
        let mut connection = service.connect();
        connection.handle(Request::Hello {
            tier: Tier::Drbg,
            quota: None,
        });
        match connection.handle(Request::Stat) {
            Response::Stat(report) => {
                assert_eq!(report.live_sessions, 1);
                assert_eq!(report.shards, 2);
            }
            other => panic!("expected stat, got {other:?}"),
        }
        // Drain until the injected retirement has been observed; the
        // drbg session stalls its reseeds instead of dying.
        for _ in 0..64 {
            match connection.handle(Request::Read { n: 256 }) {
                Response::Data { .. } => {}
                other => panic!("drbg session must survive retirement, got {other:?}"),
            }
        }
        match connection.handle(Request::Stat) {
            Response::Stat(report) => {
                assert!(report.degraded, "retirement must latch in Stat");
                assert!(report.stalled_reseeds > 0);
                // The stage telemetry and the service counters are two
                // independent tallies of the same events.
                assert_eq!(report.telemetry_stalled_reseeds, report.stalled_reseeds);
                assert_eq!(report.retirements, 1, "exactly the injected retirement");
                assert!(report.chunks_produced >= 1);
                assert_eq!(
                    report.session_bytes,
                    64 * 256,
                    "every served Read is a session byte"
                );
            }
            other => panic!("expected stat, got {other:?}"),
        }
    }
}
