//! The socket front-end: TCP everywhere, unix-domain sockets on unix.
//!
//! std-only by design (the container has no async runtime): one
//! accept thread per listener, one thread per connection, and the
//! blocking reads inside [`Session`](dhtrng_stream::Session) do the
//! flow control — a client that stops reading its socket eventually
//! blocks its connection thread on `write`, which stops that
//! session's draws on the shared source without affecting anyone
//! else's. Thousands of *sessions* are exercised through the
//! in-memory load generator ([`crate::loadgen`]); the socket layer
//! exists so real out-of-process clients speak the same frames.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] raises a flag
//! and then connects to the listener once to unblock `accept`. Live
//! connection threads finish their in-flight request and exit when
//! the client hangs up.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use crate::proto::{read_frame, write_frame, ProtoError, Request, Response, StatReport};
use crate::service::Service;
use dhtrng_stream::Tier;

/// Runs one connection to completion: frame in, state machine, frame
/// out, until the peer closes or the transport fails.
fn drive_connection(service: &Service, transport: &mut (impl Read + Write)) -> io::Result<()> {
    let mut connection = service.connect();
    while let Some(payload) = read_frame(transport)? {
        let response = connection.handle_frame(&payload);
        write_frame(transport, &response)?;
    }
    Ok(())
}

/// A running listener; dropping the handle does **not** stop it —
/// call [`shutdown`](Self::shutdown).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. Already-open
    /// connections drain naturally as their clients hang up.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Binds `addr` and serves `service` over TCP until shut down.
///
/// # Errors
///
/// The bind error, verbatim.
pub fn serve_tcp(service: Service, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let service = service.clone();
            thread::spawn(move || {
                let _ = drive_connection(&service, &mut stream);
            });
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
    })
}

/// A running unix-socket listener (unix only); the socket file is
/// removed on [`shutdown`](Self::shutdown).
#[cfg(unix)]
#[derive(Debug)]
pub struct UnixServerHandle {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

#[cfg(unix)]
impl UnixServerHandle {
    /// The socket path clients connect to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops accepting, joins the accept thread, and unlinks the
    /// socket file.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&self.path);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Binds a unix-domain socket at `path` and serves `service` until
/// shut down. A stale socket file at `path` is removed first.
///
/// # Errors
///
/// The bind error, verbatim.
#[cfg(unix)]
pub fn serve_unix(service: Service, path: impl AsRef<Path>) -> io::Result<UnixServerHandle> {
    let path = path.as_ref().to_path_buf();
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let service = service.clone();
            thread::spawn(move || {
                let _ = drive_connection(&service, &mut stream);
            });
        }
    });
    Ok(UnixServerHandle {
        path,
        stop,
        accept: Some(accept),
    })
}

/// What a [`Client`] call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The daemon's bytes did not decode.
    Proto(ProtoError),
    /// The daemon closed the connection mid-exchange.
    Closed,
    /// The daemon answered with a different response than the request
    /// calls for.
    Unexpected(Response),
    /// The daemon answered with a protocol-level error response.
    Daemon {
        /// Machine-readable failure class.
        code: crate::proto::ErrorCode,
        /// Whether retrying the identical request can succeed.
        retriable: bool,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(error) => write!(f, "transport error: {error}"),
            Self::Proto(error) => write!(f, "protocol error: {error}"),
            Self::Closed => write!(f, "daemon closed the connection"),
            Self::Unexpected(response) => write!(f, "unexpected response: {response:?}"),
            Self::Daemon { message, .. } => write!(f, "daemon error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(error) => Some(error),
            Self::Proto(error) => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> Self {
        Self::Io(error)
    }
}

impl From<ProtoError> for ClientError {
    fn from(error: ProtoError) -> Self {
        Self::Proto(error)
    }
}

/// A blocking protocol client over any byte transport.
#[derive(Debug)]
pub struct Client<S> {
    transport: S,
    offset: u64,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// The connect error, verbatim.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::new(stream))
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connects over a unix-domain socket.
    ///
    /// # Errors
    ///
    /// The connect error, verbatim.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(UnixStream::connect(path)?))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected transport.
    pub fn new(transport: S) -> Self {
        Self {
            transport,
            offset: 0,
        }
    }

    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.transport, &request.encode())?;
        let payload = read_frame(&mut self.transport)?.ok_or(ClientError::Closed)?;
        match Response::decode(&payload)? {
            Response::Error {
                code,
                retriable,
                message,
            } => Err(ClientError::Daemon {
                code,
                retriable,
                message,
            }),
            response => Ok(response),
        }
    }

    /// Opens the session; returns its daemon-side id.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol, or daemon failure.
    pub fn hello(&mut self, tier: Tier, quota: Option<u64>) -> Result<u64, ClientError> {
        match self.exchange(&Request::Hello { tier, quota })? {
            Response::HelloOk { session } => Ok(session),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Reads `n` bytes, verifying the daemon's offset against the
    /// bytes this client has already received — a passing sequence of
    /// `read`s *is* the exactly-once-delivery check.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol, or daemon failure, or
    /// if the daemon's offset breaks contiguity.
    pub fn read(&mut self, n: u32) -> Result<Vec<u8>, ClientError> {
        match self.exchange(&Request::Read { n })? {
            Response::Data { offset, bytes } => {
                if offset != self.offset || bytes.len() != n as usize {
                    return Err(ClientError::Unexpected(Response::Data { offset, bytes }));
                }
                self.offset += bytes.len() as u64;
                Ok(bytes)
            }
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fetches the daemon's service counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol, or daemon failure.
    pub fn stat(&mut self) -> Result<StatReport, ClientError> {
        match self.exchange(&Request::Stat)? {
            Response::Stat(report) => Ok(report),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
